#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace hdd {
namespace {

Digraph Chain(int n) {
  Digraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddArc(i, i + 1);
  return g;
}

TEST(AcyclicityTest, ChainIsAcyclic) { EXPECT_TRUE(IsAcyclic(Chain(5))); }

TEST(AcyclicityTest, CycleDetected) {
  Digraph g = Chain(4);
  g.AddArc(3, 0);
  EXPECT_FALSE(IsAcyclic(g));
}

TEST(AcyclicityTest, TwoCycleDetected) {
  Digraph g(2);
  g.AddArc(0, 1);
  g.AddArc(1, 0);
  EXPECT_FALSE(IsAcyclic(g));
}

TEST(FindCycleTest, ReturnsWitness) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 1);
  auto cycle = FindCycle(g);
  ASSERT_TRUE(cycle.has_value());
  ASSERT_GE(cycle->size(), 3u);
  EXPECT_EQ(cycle->front(), cycle->back());
  for (std::size_t i = 0; i + 1 < cycle->size(); ++i) {
    EXPECT_TRUE(g.HasArc((*cycle)[i], (*cycle)[i + 1]));
  }
}

TEST(FindCycleTest, NoneWhenAcyclic) {
  EXPECT_FALSE(FindCycle(Chain(6)).has_value());
}

TEST(TopologicalOrderTest, RespectsArcs) {
  Digraph g(4);
  g.AddArc(3, 1);
  g.AddArc(1, 0);
  g.AddArc(3, 2);
  g.AddArc(2, 0);
  auto order = TopologicalOrder(g);
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[(*order)[i]] = i;
  for (const auto& [u, v] : g.Arcs()) EXPECT_LT(pos[u], pos[v]);
}

TEST(TopologicalOrderTest, NulloptOnCycle) {
  Digraph g(2);
  g.AddArc(0, 1);
  g.AddArc(1, 0);
  EXPECT_FALSE(TopologicalOrder(g).has_value());
}

TEST(ReachabilityTest, TransitiveReach) {
  Digraph g = Chain(4);
  EXPECT_EQ(ReachableFrom(g, 0), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(ReachableFrom(g, 3), (std::vector<NodeId>{}));
}

TEST(TransitiveClosureTest, AddsInducedArcs) {
  Digraph g = Chain(3);
  Digraph c = TransitiveClosure(g);
  EXPECT_TRUE(c.HasArc(0, 2));
  EXPECT_TRUE(c.HasArc(0, 1));
  EXPECT_FALSE(c.HasArc(2, 0));
}

TEST(TransitiveReductionTest, RemovesInducedArcs) {
  Digraph g = Chain(3);
  g.AddArc(0, 2);  // transitively induced
  Digraph r = TransitiveReduction(g);
  EXPECT_TRUE(r.HasArc(0, 1));
  EXPECT_TRUE(r.HasArc(1, 2));
  EXPECT_FALSE(r.HasArc(0, 2));
}

TEST(TransitiveReductionTest, KeepsDiamond) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.AddArc(1, 3);
  g.AddArc(2, 3);
  Digraph r = TransitiveReduction(g);
  EXPECT_EQ(r.num_arcs(), 4u);
}

TEST(TransitiveReductionTest, ReductionPreservesReachability) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    // Random DAG: arcs only low -> high index.
    const int n = 8;
    Digraph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.NextBool(0.3)) g.AddArc(u, v);
      }
    }
    Digraph r = TransitiveReduction(g);
    EXPECT_EQ(TransitiveClosureMatrix(g), TransitiveClosureMatrix(r));
    EXPECT_LE(r.num_arcs(), g.num_arcs());
  }
}

TEST(SccTest, DagHasSingletonComponents) {
  int n = 0;
  auto comp = StronglyConnectedComponents(Chain(5), &n);
  EXPECT_EQ(n, 5);
  std::sort(comp.begin(), comp.end());
  comp.erase(std::unique(comp.begin(), comp.end()), comp.end());
  EXPECT_EQ(comp.size(), 5u);
}

TEST(SccTest, CycleCollapses) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 0);
  g.AddArc(2, 3);
  int n = 0;
  auto comp = StronglyConnectedComponents(g, &n);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[2], comp[3]);
}

TEST(SccTest, ComponentsReverseTopological) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  int n = 0;
  auto comp = StronglyConnectedComponents(g, &n);
  // Tarjan numbers sinks first.
  EXPECT_LT(comp[2], comp[1]);
  EXPECT_LT(comp[1], comp[0]);
}

TEST(QuotientTest, MergesAndDropsIntraArcs) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 3);
  // Merge {1,2} into group 1.
  Digraph q = Quotient(g, {0, 1, 1, 2}, 3);
  EXPECT_EQ(q.num_nodes(), 3);
  EXPECT_TRUE(q.HasArc(0, 1));
  EXPECT_TRUE(q.HasArc(1, 2));
  EXPECT_EQ(q.num_arcs(), 2u);
}

TEST(UndirectedForestTest, TreeShapes) {
  Digraph g(4);
  g.AddArc(1, 0);
  g.AddArc(2, 0);
  g.AddArc(3, 1);
  EXPECT_TRUE(UnderlyingUndirectedIsForest(g));
}

TEST(UndirectedForestTest, UndirectedCycleRejected) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.AddArc(1, 2);  // triangle ignoring direction
  EXPECT_FALSE(UnderlyingUndirectedIsForest(g));
}

TEST(UndirectedForestTest, AntiparallelRejected) {
  Digraph g(2);
  g.AddArc(0, 1);
  g.AddArc(1, 0);
  EXPECT_FALSE(UnderlyingUndirectedIsForest(g));
}

TEST(UndirectedTreePathTest, FindsUniquePath) {
  Digraph g(5);
  g.AddArc(1, 0);
  g.AddArc(2, 1);
  g.AddArc(3, 1);
  g.AddArc(4, 3);
  auto path = UndirectedTreePath(g, 2, 4);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{2, 1, 3, 4}));
}

TEST(UndirectedTreePathTest, DisconnectedGivesNullopt) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(2, 3);
  EXPECT_FALSE(UndirectedTreePath(g, 0, 3).has_value());
}

TEST(UndirectedTreePathTest, TrivialPath) {
  Digraph g(2);
  auto path = UndirectedTreePath(g, 1, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{1}));
}

}  // namespace
}  // namespace hdd
