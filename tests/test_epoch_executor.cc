// Epoch/batch execution engine, tier-1 coverage:
//  * BuildEpochGraph orders exactly the declared same-class conflicts of a
//    batch (w-w, w-r, r-w), skips read-only and cross-class pairs, and the
//    mutation canary drops precisely the first edge.
//  * Admission/retry semantics: retryable aborts are re-admitted in a
//    later epoch; the retry budget turns a persistent abort into one
//    failed program without poisoning the rest of the stream.
//  * The epoch-parallel execution of a deterministic conflicting workload
//    leaves the database byte-identical to a serial run in admission
//    order (the dependency graph IS the serialization order).
//  * Property test: on seeded random hierarchies, every Protocol A bound
//    served from the per-epoch shared cache equals an independent per-txn
//    evaluation A_i^j(m_e) byte-for-byte, and the cache fills each
//    (class, class) pair exactly once.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/epoch_executor.h"
#include "engine/synthetic_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

TxnProgram UpdateProgram(ClassId cls, std::vector<GranuleRef> reads,
                         std::vector<GranuleRef> writes) {
  TxnProgram p;
  p.options.txn_class = cls;
  p.declared_reads = std::move(reads);
  p.declared_writes = std::move(writes);
  p.body = [](ConcurrencyController&, const TxnDescriptor&) {
    return Status::OK();
  };
  return p;
}

std::vector<const TxnProgram*> Ptrs(const std::vector<TxnProgram>& batch) {
  std::vector<const TxnProgram*> out;
  for (const TxnProgram& p : batch) out.push_back(&p);
  return out;
}

TEST(EpochGraph, OrdersDeclaredSameClassConflicts) {
  std::vector<TxnProgram> batch;
  batch.push_back(UpdateProgram(0, {{0, 1}}, {{0, 2}}));  // 0: r1 w2
  batch.push_back(UpdateProgram(0, {{0, 2}}, {{0, 3}}));  // 1: r2 w3 (r-w 0)
  batch.push_back(UpdateProgram(0, {}, {{0, 2}}));        // 2: w2 (w-w 0, w-r 1)
  batch.push_back(UpdateProgram(0, {{0, 9}}, {{0, 8}}));  // 3: disjoint
  EpochGraph g = BuildEpochGraph(Ptrs(batch));

  ASSERT_EQ(g.successors.size(), 4u);
  EXPECT_EQ(g.num_edges, 3u);
  EXPECT_EQ(g.successors[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(g.successors[1], (std::vector<int>{2}));
  EXPECT_TRUE(g.successors[2].empty());
  EXPECT_TRUE(g.successors[3].empty());
  EXPECT_EQ(g.indegree, (std::vector<int>{0, 1, 2, 0}));
}

TEST(EpochGraph, SkipsReadOnlyAndCrossClassPairs) {
  std::vector<TxnProgram> batch;
  batch.push_back(UpdateProgram(0, {}, {{0, 5}}));
  // Same granule index, different class root segment: Protocol A/B never
  // puts these in the same version chain, so no edge.
  batch.push_back(UpdateProgram(1, {}, {{1, 5}}));
  TxnProgram ro;
  ro.options.read_only = true;
  ro.body = [](ConcurrencyController&, const TxnDescriptor&) {
    return Status::OK();
  };
  batch.push_back(std::move(ro));
  batch.push_back(UpdateProgram(0, {{0, 5}}, {}));  // w-r with 0

  EpochGraph g = BuildEpochGraph(Ptrs(batch));
  EXPECT_EQ(g.num_edges, 1u);
  EXPECT_EQ(g.successors[0], (std::vector<int>{3}));
  EXPECT_TRUE(g.successors[1].empty());
  EXPECT_TRUE(g.successors[2].empty());
  EXPECT_EQ(g.indegree, (std::vector<int>{0, 0, 0, 1}));
}

TEST(EpochGraph, MutationCanaryDropsExactlyTheFirstEdge) {
  std::vector<TxnProgram> batch;
  batch.push_back(UpdateProgram(0, {}, {{0, 1}}));
  batch.push_back(UpdateProgram(0, {{0, 1}}, {{0, 2}}));  // first edge 0->1
  batch.push_back(UpdateProgram(0, {{0, 2}}, {}));        // edge 1->2
  EpochGraph sound = BuildEpochGraph(Ptrs(batch));
  EpochGraph mutated = BuildEpochGraph(Ptrs(batch), /*skip_first_edge=*/true);

  EXPECT_EQ(sound.num_edges, 2u);
  EXPECT_EQ(mutated.num_edges, 1u);
  EXPECT_TRUE(mutated.successors[0].empty());
  EXPECT_EQ(mutated.successors[1], (std::vector<int>{2}));
  EXPECT_EQ(mutated.indegree, (std::vector<int>{0, 0, 1}));
}

/// One-segment hierarchy: the smallest schema on which Protocol B (and
/// hence the dependency graph) carries all the weight.
PartitionSpec FlatSpec() {
  PartitionSpec spec;
  spec.segment_names = {"S0"};
  TransactionTypeSpec type;
  type.name = "class0";
  type.root_segment = 0;
  spec.transaction_types.push_back(type);
  return spec;
}

/// Serves a fixed list of programs by stream index (the epoch executor
/// draws indices 0..total-1 in admission order).
class FixedWorkload : public Workload {
 public:
  explicit FixedWorkload(std::vector<TxnProgram> programs)
      : programs_(std::move(programs)) {}

  TxnProgram Make(std::uint64_t index, Rng&) const override {
    return programs_[index % programs_.size()];
  }

  std::size_t size() const { return programs_.size(); }

 private:
  std::vector<TxnProgram> programs_;
};

TEST(EpochExecutor, CommitsEverythingAcrossEpochsAndStaysSerializable) {
  SyntheticWorkloadParams params;
  params.depth = 3;
  params.granules_per_segment = 8;
  params.own_reads = 1;
  params.own_writes = 2;
  params.upper_reads = 2;
  params.read_only_fraction = 0.2;
  SyntheticWorkload workload(params);
  auto schema = HierarchySchema::Create(workload.Spec());
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  HddController cc(db.get(), &clock, &*schema);

  EpochExecutorOptions options;
  options.num_threads = 4;
  options.epoch_size = 16;
  options.seed = 42;
  constexpr std::uint64_t kTxns = 300;
  ExecutorStats stats = RunWorkloadEpochs(cc, workload, kTxns, options);

  EXPECT_EQ(stats.committed, kTxns);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.crashed, 0u);
  // At least ceil(300 / 16) epochs, all closed again by the end.
  EXPECT_GE(stats.epochs, kTxns / options.epoch_size);
  EXPECT_EQ(stats.cc.at("epochs"), stats.epochs);
  // The batch actually shared bounds: with depth 3 every class-1/class-2
  // program evaluates upper bounds, but only the first per (class, class)
  // pair per epoch may miss.
  EXPECT_GT(stats.cc.at("epoch_shared_bound_hits"), 0u);
  EXPECT_GE(stats.cc.at("epoch_shared_bound_hits"),
            stats.cc.at("epoch_shared_bound_misses"));
  // Protocol A stays registration-free under epochs.
  EXPECT_EQ(cc.metrics().read_locks_acquired.load(), 0u);

  auto report = CheckSerializability(cc.recorder());
  EXPECT_TRUE(report.serializable)
      << "epoch execution produced a cycle of "
      << report.witness_cycle.size() << " transactions";
}

TEST(EpochExecutor, SingleWorkerEpochWithReadOnlyTxnsTerminates) {
  // Liveness regression: a read-only transaction that triggers a time-wall
  // release mid-epoch must not wait for finish events of batch update
  // transactions still sitting unexecuted in the ready queue — with one
  // worker nobody else can produce them. The controller anchors walls at
  // or below the epoch anchor, so this run must terminate.
  SyntheticWorkloadParams params;
  params.depth = 2;
  params.granules_per_segment = 4;
  params.read_only_fraction = 0.4;
  SyntheticWorkload workload(params);
  auto schema = HierarchySchema::Create(workload.Spec());
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  HddController cc(db.get(), &clock, &*schema);

  EpochExecutorOptions options;
  options.num_threads = 1;
  options.epoch_size = 8;
  options.seed = 7;
  ExecutorStats stats = RunWorkloadEpochs(cc, workload, 64, options);
  EXPECT_EQ(stats.committed, 64u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST(EpochExecutor, RestructureIsBusyWhileAnEpochIsOpen) {
  // Epoch-admitted transactions run without the per-op structure gate,
  // relying on the checked BeginEpoch/Restructure exclusion: Restructure
  // must refuse (Busy) rather than swap the shard vector under a batch,
  // and must succeed again once the epoch closes.
  SyntheticWorkloadParams params;
  params.depth = 2;
  params.granules_per_segment = 4;
  SyntheticWorkload workload(params);
  auto schema = HierarchySchema::Create(workload.Spec());
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  HddController cc(db.get(), &clock, &*schema);

  auto epoch = cc.BeginEpoch();
  ASSERT_TRUE(epoch.ok()) << epoch.status();
  auto batch = cc.BeginBatch(*epoch, {TxnOptions{.txn_class = 1}});
  ASSERT_TRUE(batch.ok()) << batch.status();

  EXPECT_EQ(cc.Restructure({0, 1}, {}).status().code(), StatusCode::kBusy);

  // The gate-less operation set still works end to end: a Protocol A
  // read of the upper segment, a Protocol B write, and the commit.
  const TxnDescriptor& txn = (*batch)[0];
  ASSERT_TRUE(cc.Read(txn, GranuleRef{0, 0}).ok());
  ASSERT_TRUE(cc.Write(txn, GranuleRef{1, 0}, 7).ok());
  ASSERT_TRUE(cc.Commit(txn).ok());
  ASSERT_TRUE(cc.EndEpoch(*epoch).ok());

  auto merged = cc.Restructure({0, 1}, {});
  EXPECT_TRUE(merged.ok()) << merged.status();
}

TEST(EpochExecutor, RetryableAbortIsReadmittedInALaterEpoch) {
  auto schema = HierarchySchema::Create(FlatSpec());
  ASSERT_TRUE(schema.ok()) << schema.status();
  Database db(1, 4);
  LogicalClock clock;
  HddController cc(&db, &clock, &*schema);

  // Program 0 refuses to run until its third attempt; everything else
  // commits immediately. All programs conflict on granule 0 so the graph
  // is a chain and admission order is fully exercised.
  auto flaky_attempts = std::make_shared<std::atomic<int>>(0);
  std::vector<TxnProgram> programs;
  for (int k = 0; k < 6; ++k) {
    TxnProgram p;
    p.options.txn_class = 0;
    p.declared_writes = {{0, 0}};
    if (k == 0) {
      p.body = [flaky_attempts](ConcurrencyController& c,
                                const TxnDescriptor& txn) -> Status {
        if (flaky_attempts->fetch_add(1) < 2) {
          return Status::Aborted("injected retryable conflict");
        }
        return c.Write(txn, {0, 0}, 1);
      };
    } else {
      p.body = [k](ConcurrencyController& c,
                   const TxnDescriptor& txn) -> Status {
        return c.Write(txn, {0, 0}, k);
      };
    }
    programs.push_back(std::move(p));
  }
  FixedWorkload workload(std::move(programs));

  EpochExecutorOptions options;
  options.num_threads = 2;
  options.epoch_size = 6;
  ExecutorStats stats = RunWorkloadEpochs(cc, workload, 6, options);

  EXPECT_EQ(stats.committed, 6u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.aborted_attempts, 2u);
  // The two retries ride in later epochs: epoch 1 with the full batch,
  // then at least two more carrying the re-admitted straggler.
  EXPECT_GE(stats.epochs, 3u);
  EXPECT_EQ(flaky_attempts->load(), 3);
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST(EpochExecutor, RetryBudgetExhaustionFailsOnlyTheHopelessProgram) {
  auto schema = HierarchySchema::Create(FlatSpec());
  ASSERT_TRUE(schema.ok()) << schema.status();
  Database db(1, 4);
  LogicalClock clock;
  HddController cc(&db, &clock, &*schema);

  std::vector<TxnProgram> programs;
  for (int k = 0; k < 4; ++k) {
    TxnProgram p;
    p.options.txn_class = 0;
    p.declared_writes = {{0, 1}};
    if (k == 2) {
      p.body = [](ConcurrencyController&, const TxnDescriptor&) -> Status {
        return Status::Aborted("never succeeds");
      };
    } else {
      p.body = [k](ConcurrencyController& c,
                   const TxnDescriptor& txn) -> Status {
        return c.Write(txn, {0, 1}, k);
      };
    }
    programs.push_back(std::move(p));
  }
  FixedWorkload workload(std::move(programs));

  EpochExecutorOptions options;
  options.num_threads = 2;
  options.epoch_size = 4;
  options.max_retries = 3;
  ExecutorStats stats = RunWorkloadEpochs(cc, workload, 4, options);

  EXPECT_EQ(stats.committed, 3u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_GE(stats.aborted_attempts, 3u);
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST(EpochExecutor, MatchesSerialReferenceExecution) {
  // Deterministic read-modify-write programs over 4 granules: every pair
  // conflicts somewhere, so the per-epoch dependency graph must reproduce
  // admission (= timestamp) order exactly. The parallel epoch run and a
  // serial per-txn run in stream order must end in identical states.
  constexpr std::uint32_t kGranules = 4;
  constexpr std::uint64_t kTxns = 20;
  std::vector<TxnProgram> programs;
  for (std::uint64_t k = 0; k < kTxns; ++k) {
    const std::uint32_t src = static_cast<std::uint32_t>(k % kGranules);
    const std::uint32_t dst = static_cast<std::uint32_t>((k + 1) % kGranules);
    TxnProgram p;
    p.options.txn_class = 0;
    p.declared_reads = {{0, src}};
    p.declared_writes = {{0, dst}};
    p.body = [src, dst, k](ConcurrencyController& c,
                           const TxnDescriptor& txn) -> Status {
      HDD_ASSIGN_OR_RETURN(Value v, c.Read(txn, {0, src}));
      return c.Write(txn, {0, dst}, v * 3 + static_cast<Value>(k) + 1);
    };
    programs.push_back(std::move(p));
  }
  FixedWorkload workload(std::move(programs));

  auto run_epochs = [&](Database& db) {
    auto schema = HierarchySchema::Create(FlatSpec());
    EXPECT_TRUE(schema.ok()) << schema.status();
    LogicalClock clock;
    HddController cc(&db, &clock, &*schema);
    EpochExecutorOptions options;
    options.num_threads = 3;
    options.epoch_size = 5;
    ExecutorStats stats = RunWorkloadEpochs(cc, workload, kTxns, options);
    EXPECT_EQ(stats.committed, kTxns);
    // No conflict aborts: the graph already orders every conflict, so a
    // retry would reshuffle admission order and void the comparison.
    EXPECT_EQ(stats.aborted_attempts, 0u);
    EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
  };
  auto run_serial = [&](Database& db) {
    auto schema = HierarchySchema::Create(FlatSpec());
    EXPECT_TRUE(schema.ok()) << schema.status();
    LogicalClock clock;
    HddController cc(&db, &clock, &*schema);
    Rng rng(1);
    for (std::uint64_t k = 0; k < kTxns; ++k) {
      TxnProgram p = workload.Make(k, rng);
      auto txn = cc.Begin(p.options);
      ASSERT_TRUE(txn.ok()) << txn.status();
      ASSERT_TRUE(p.body(cc, *txn).ok());
      ASSERT_TRUE(cc.Commit(*txn).ok());
    }
  };

  Database epoch_db(1, kGranules);
  Database serial_db(1, kGranules);
  run_epochs(epoch_db);
  run_serial(serial_db);

  for (std::uint32_t g = 0; g < kGranules; ++g) {
    const Version* a = epoch_db.granule({0, g}).LatestCommitted();
    const Version* b = serial_db.granule({0, g}).LatestCommitted();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->value, b->value) << "granule " << g;
  }
}

/// Random TST hierarchy (same construction as the random-hierarchy stress
/// test): a random tree over 2..7 classes, each class declaring a random
/// subset of its ancestors as critical-path reads.
struct RandomHierarchy {
  PartitionSpec spec;
  std::vector<int> parent;
};

RandomHierarchy MakeRandomHierarchy(Rng& rng) {
  RandomHierarchy h;
  const int n = static_cast<int>(rng.NextInRange(2, 7));
  h.parent.assign(n, -1);
  for (int v = 1; v < n; ++v) {
    h.parent[v] = static_cast<int>(rng.NextBounded(v));
  }
  for (int v = 0; v < n; ++v) {
    h.spec.segment_names.push_back("S" + std::to_string(v));
    TransactionTypeSpec type;
    type.name = "class" + std::to_string(v);
    type.root_segment = v;
    for (int a = h.parent[v]; a != -1; a = h.parent[a]) {
      if (rng.NextBool(0.7)) type.read_segments.push_back(a);
    }
    h.spec.transaction_types.push_back(type);
  }
  return h;
}

class EpochSharedBoundsTest : public ::testing::TestWithParam<std::uint64_t> {
};

// Property: every Protocol A bound served to an epoch-admitted
// transaction equals an independent per-txn evaluation of A_i^j at the
// epoch anchor, byte for byte, and the shared cache evaluates each
// (own class, target class) pair exactly once per epoch.
TEST_P(EpochSharedBoundsTest, SharedBoundsEqualPerTxnEvaluation) {
  Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    // Not every random draw is TST-hierarchical (skip-level read subsets
    // can close a diamond); redraw until the schema is legal.
    RandomHierarchy h = MakeRandomHierarchy(rng);
    auto schema = HierarchySchema::Create(h.spec);
    for (int redraw = 0; !schema.ok() && redraw < 64; ++redraw) {
      h = MakeRandomHierarchy(rng);
      schema = HierarchySchema::Create(h.spec);
    }
    ASSERT_TRUE(schema.ok()) << schema.status();
    const int n = static_cast<int>(h.spec.segment_names.size());
    constexpr std::uint32_t kGranules = 4;
    Database db(n, kGranules);
    LogicalClock clock;
    HddControllerOptions copts;
    // Keep full activity history so A_i^j(m_e) can be re-evaluated after
    // the fact (idle-point trims would otherwise discard the records the
    // verification below replays).
    copts.auto_trim_history = false;
    HddController cc(&db, &clock, &*schema, copts);

    // Idle update transactions begun BEFORE the epoch: active at the
    // anchor, they drag I^old below m_e so the bounds under test are
    // non-trivial. They touch no data, so they cannot interfere with the
    // epoch's delegated write checks.
    std::vector<TxnDescriptor> idlers;
    for (int c = 0; c < n; ++c) {
      if (!rng.NextBool(0.5)) continue;
      TxnOptions opts;
      opts.txn_class = c;
      auto t = cc.Begin(opts);
      ASSERT_TRUE(t.ok()) << t.status();
      idlers.push_back(*t);
    }

    auto handle = cc.BeginEpoch();
    ASSERT_TRUE(handle.ok()) << handle.status();
    EXPECT_GT(handle->id, 0u);

    // A batch of update transactions over random classes.
    std::vector<TxnOptions> batch;
    for (int k = 0; k < 8; ++k) {
      TxnOptions opts;
      opts.txn_class = static_cast<ClassId>(rng.NextBounded(n));
      batch.push_back(opts);
    }
    auto admitted = cc.BeginBatch(*handle, batch);
    ASSERT_TRUE(admitted.ok()) << admitted.status();
    ASSERT_EQ(admitted->size(), batch.size());
    for (const TxnDescriptor& txn : *admitted) {
      EXPECT_EQ(txn.epoch, handle->id);
      EXPECT_GT(txn.init_ts, handle->anchor);
    }

    // Every transaction reads its declared upper segments (Protocol A,
    // bounds come from the shared cache) and writes one own granule.
    std::set<std::pair<ClassId, ClassId>> pairs_used;
    for (const TxnDescriptor& txn : *admitted) {
      const auto& declared =
          h.spec.transaction_types[txn.txn_class].read_segments;
      for (SegmentId s : declared) {
        auto v = cc.Read(
            txn, {s, static_cast<std::uint32_t>(rng.NextBounded(kGranules))});
        ASSERT_TRUE(v.ok()) << v.status();
        pairs_used.insert({txn.txn_class, cc.ClassOfSegment(s)});
      }
      ASSERT_TRUE(cc.Write(txn,
                           {txn.txn_class, static_cast<std::uint32_t>(
                                               rng.NextBounded(kGranules))},
                           1)
                      .ok());
      ASSERT_TRUE(cc.Commit(txn).ok());
    }
    ASSERT_TRUE(cc.EndEpoch(*handle).ok());
    for (const TxnDescriptor& t : idlers) ASSERT_TRUE(cc.Abort(t).ok());

    // Replay: every unregistered epoch read must have been served at
    // exactly A_i^j(m_e) as the per-txn evaluator computes it.
    const auto identities = cc.recorder().identities();
    std::size_t checked = 0;
    for (const Step& step : cc.recorder().steps()) {
      if (step.action != Step::Action::kRead || step.registered) continue;
      if (step.bound == kTimestampMin) continue;
      const auto it = identities.find(step.txn);
      ASSERT_NE(it, identities.end());
      const ClassId own = it->second.txn_class;
      const ClassId target = cc.ClassOfSegment(step.granule.segment);
      auto direct = cc.evaluator().A(own, target, handle->anchor);
      ASSERT_TRUE(direct.ok()) << direct.status();
      EXPECT_EQ(static_cast<std::uint64_t>(step.bound),
                static_cast<std::uint64_t>(*direct))
          << "seed " << GetParam() << " round " << round << " txn "
          << step.txn << " class " << own << " -> " << target;
      ++checked;
    }
    // Single-driver run: the cache must have evaluated each pair once and
    // served every further read of the pair from the cache.
    const std::uint64_t misses =
        cc.metrics().epoch_shared_bound_misses.load();
    const std::uint64_t hits = cc.metrics().epoch_shared_bound_hits.load();
    EXPECT_EQ(misses, pairs_used.size())
        << "seed " << GetParam() << " round " << round;
    EXPECT_EQ(hits + misses, checked);
    EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochSharedBoundsTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace hdd
