// Abort-path coverage for the HDD controller: aborting mid-write on the
// root segment, garbage collection racing an eventually-aborted writer,
// and time-wall pins held (then released) across a read-only abort. These
// are the recovery paths the deterministic simulation harness exercises
// under fault injection; here each scenario is pinned down sequentially.

#include <gtest/gtest.h>

#include <memory>

#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

// The paper's Figure 2 inventory hierarchy:
// events(0) <- inventory(1) <- orders(2) <- suppliers(3).
PartitionSpec InventorySpec() {
  PartitionSpec spec;
  spec.segment_names = {"events", "inventory", "orders", "suppliers"};
  spec.transaction_types = {
      {"log_event", 0, {}},
      {"post_inventory", 1, {0}},
      {"reorder", 2, {0, 1}},
      {"supplier_profile", 3, {0, 2}},
  };
  return spec;
}

constexpr GranuleRef kEvent0{0, 0};
constexpr GranuleRef kEvent1{0, 1};

class HddAbortPathsTest : public ::testing::Test {
 protected:
  HddAbortPathsTest() : db_(4, 2, 0) {
    auto schema = HierarchySchema::Create(InventorySpec());
    EXPECT_TRUE(schema.ok());
    schema_ = std::make_unique<HierarchySchema>(std::move(schema).value());
    cc_ = std::make_unique<HddController>(&db_, &clock_, schema_.get());
  }

  // Runs a complete class-0 update writing `value` into kEvent0.
  void CommitEvent(Value value) {
    auto txn = cc_->Begin({.txn_class = 0});
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(cc_->Write(*txn, kEvent0, value).ok());
    ASSERT_TRUE(cc_->Commit(*txn).ok());
  }

  Database db_;
  LogicalClock clock_;
  std::unique_ptr<HierarchySchema> schema_;
  std::unique_ptr<HddController> cc_;
};

TEST_F(HddAbortPathsTest, AbortMidWriteOnRootSegmentUndoesAllWrites) {
  const std::size_t before0 = db_.granule(kEvent0).num_versions();
  const std::size_t before1 = db_.granule(kEvent1).num_versions();

  // Abort after writing TWO granules of the root segment: every
  // uncommitted version must be removed, not just the last one.
  auto txn = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(cc_->Write(*txn, kEvent0, 41).ok());
  ASSERT_TRUE(cc_->Write(*txn, kEvent1, 42).ok());
  EXPECT_EQ(db_.granule(kEvent0).num_versions(), before0 + 1);
  ASSERT_TRUE(cc_->Abort(*txn).ok());

  EXPECT_EQ(db_.granule(kEvent0).num_versions(), before0);
  EXPECT_EQ(db_.granule(kEvent1).num_versions(), before1);

  // Fresh transactions of the same class and of a higher class (Protocol
  // A) both see the pre-abort state.
  auto own = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(own.ok());
  auto v0 = cc_->Read(*own, kEvent0);
  auto v1 = cc_->Read(*own, kEvent1);
  ASSERT_TRUE(v0.ok());
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v0, 0);
  EXPECT_EQ(*v1, 0);
  ASSERT_TRUE(cc_->Commit(*own).ok());

  auto upper = cc_->Begin({.txn_class = 1});
  ASSERT_TRUE(upper.ok());
  auto across = cc_->Read(*upper, kEvent0);
  ASSERT_TRUE(across.ok());
  EXPECT_EQ(*across, 0);
  ASSERT_TRUE(cc_->Commit(*upper).ok());

  EXPECT_TRUE(CheckSerializability(cc_->recorder()).serializable);
}

TEST_F(HddAbortPathsTest, AbortedTxnIsGoneAndDoubleAbortRejected) {
  auto txn = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(cc_->Write(*txn, kEvent0, 7).ok());
  ASSERT_TRUE(cc_->Abort(*txn).ok());
  // Every operation on the dead transaction must fail cleanly.
  EXPECT_EQ(cc_->Abort(*txn).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cc_->Commit(*txn).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cc_->Read(*txn, kEvent0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cc_->Write(*txn, kEvent0, 8).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(HddAbortPathsTest, GcKeepsUncommittedVersionOfPendingWriter) {
  // Three committed versions pile up, then a writer goes active with an
  // uncommitted fourth.
  CommitEvent(1);
  CommitEvent(2);
  CommitEvent(3);
  auto writer = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(cc_->Write(*writer, kEvent0, 42).ok());
  const std::size_t with_pending = db_.granule(kEvent0).num_versions();

  // The GC horizon is capped by the active writer's initiation time, so
  // GC may prune the stale committed versions below the snapshot base but
  // MUST retain the base and the writer's uncommitted version.
  EXPECT_LE(cc_->SafeGcHorizon(), writer->init_ts);
  const std::size_t removed = cc_->CollectGarbage();
  EXPECT_EQ(removed, 3u);  // initial version + commits 1 and 2
  EXPECT_EQ(db_.granule(kEvent0).num_versions(), with_pending - removed);

  // The writer is unharmed: it still sees its own write and can abort,
  // which removes exactly the uncommitted version.
  auto own = cc_->Read(*writer, kEvent0);
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(*own, 42);
  ASSERT_TRUE(cc_->Abort(*writer).ok());

  auto after = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(after.ok());
  auto value = cc_->Read(*after, kEvent0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 3);  // the surviving snapshot base
  ASSERT_TRUE(cc_->Commit(*after).ok());
}

TEST_F(HddAbortPathsTest, WallPinHeldAcrossLifeAndReleasedOnAbort) {
  CommitEvent(1);

  // The read-only transaction pins a wall at its first Protocol C read
  // and keeps reading the same consistent cut afterwards.
  auto ro = cc_->Begin({.read_only = true});
  ASSERT_TRUE(ro.ok());
  auto first = cc_->Read(*ro, kEvent0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1);
  ASSERT_EQ(cc_->num_walls(), 1u);

  // Later commits and a newer wall must not move the pinned cut...
  CommitEvent(2);
  CommitEvent(3);
  ASSERT_TRUE(cc_->ReleaseNewWall().ok());
  ASSERT_EQ(cc_->num_walls(), 2u);
  auto again = cc_->Read(*ro, kEvent0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 1);

  // ...and the pinned (older) wall caps the GC horizon while the
  // transaction lives, even though a newer wall is already out.
  const Timestamp pinned_horizon = cc_->SafeGcHorizon();
  const std::size_t removed_pinned = cc_->CollectGarbage();
  // Version 1 is the pinned wall's snapshot base: only the initial
  // version below it may go.
  EXPECT_EQ(removed_pinned, 1u);
  auto still = cc_->Read(*ro, kEvent0);
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(*still, 1);

  // Aborting the read-only transaction releases the pin: the horizon
  // jumps to the newest wall and GC may now prune up to its base.
  ASSERT_TRUE(cc_->Abort(*ro).ok());
  const Timestamp after_horizon = cc_->SafeGcHorizon();
  EXPECT_GT(after_horizon, pinned_horizon);
  const std::size_t removed_after = cc_->CollectGarbage();
  EXPECT_EQ(removed_after, 2u);  // versions 1 and 2; base 3 survives

  auto later = cc_->Begin({.read_only = true});
  ASSERT_TRUE(later.ok());
  auto value = cc_->Read(*later, kEvent0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 3);
  ASSERT_TRUE(cc_->Commit(*later).ok());
}

TEST_F(HddAbortPathsTest, AbortPathsLeaveMetricsAndHistoryConsistent) {
  auto a = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(cc_->Write(*a, kEvent0, 5).ok());
  ASSERT_TRUE(cc_->Abort(*a).ok());
  auto ro = cc_->Begin({.read_only = true});
  ASSERT_TRUE(ro.ok());
  ASSERT_TRUE(cc_->Read(*ro, kEvent0).ok());
  ASSERT_TRUE(cc_->Abort(*ro).ok());

  EXPECT_EQ(cc_->metrics().aborts.load(), 2u);
  const auto outcomes = cc_->recorder().outcomes();
  EXPECT_EQ(outcomes.at(a->id), TxnState::kAborted);
  EXPECT_EQ(outcomes.at(ro->id), TxnState::kAborted);
  // Aborted reads/writes never count against serializability.
  EXPECT_TRUE(CheckSerializability(cc_->recorder()).serializable);
}

}  // namespace
}  // namespace hdd
