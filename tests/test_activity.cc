#include "hdd/activity.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hdd {
namespace {

TEST(ActivityTableTest, IdleClassReturnsM) {
  ClassActivityTable table;
  EXPECT_EQ(table.OldestActiveAt(10), 10u);
  auto c_late = table.LatestEndAt(10);
  ASSERT_TRUE(c_late.ok());
  EXPECT_EQ(*c_late, 10u);
}

TEST(ActivityTableTest, OldestActiveCurrentTxn) {
  ClassActivityTable table;
  table.OnBegin(5);
  EXPECT_EQ(table.OldestActiveAt(10), 5u);
  EXPECT_EQ(table.OldestActiveAt(5), 5u);   // I < m required: 5 !< 5
  EXPECT_EQ(table.OldestActiveAt(3), 3u);   // started after m
}

TEST(ActivityTableTest, OldestActivePicksMinimum) {
  ClassActivityTable table;
  table.OnBegin(5);
  table.OnBegin(3);
  table.OnBegin(8);
  EXPECT_EQ(table.OldestActiveAt(10), 3u);
  EXPECT_EQ(table.OldestActiveAt(4), 3u);
}

TEST(ActivityTableTest, FinishedTxnStillCountsForStraddledTimes) {
  ClassActivityTable table;
  table.OnBegin(3);
  table.OnFinish(3, 9);
  // Active at m in (3, 9): still the oldest active *at that time*.
  EXPECT_EQ(table.OldestActiveAt(5), 3u);
  // Not active at m >= 9.
  EXPECT_EQ(table.OldestActiveAt(9), 9u);
  EXPECT_EQ(table.OldestActiveAt(12), 12u);
}

TEST(ActivityTableTest, MixedActiveAndFinished) {
  ClassActivityTable table;
  table.OnBegin(2);
  table.OnFinish(2, 4);
  table.OnBegin(6);
  EXPECT_EQ(table.OldestActiveAt(3), 2u);
  EXPECT_EQ(table.OldestActiveAt(5), 5u);  // gap: nothing active
  EXPECT_EQ(table.OldestActiveAt(7), 6u);
}

TEST(ActivityTableTest, CLateTakesMaxEnd) {
  ClassActivityTable table;
  table.OnBegin(2);
  table.OnFinish(2, 10);
  table.OnBegin(3);
  table.OnFinish(3, 7);
  auto c_late = table.LatestEndAt(5);
  ASSERT_TRUE(c_late.ok());
  EXPECT_EQ(*c_late, 10u);  // both active at 5; max end
}

TEST(ActivityTableTest, CLateNotComputableWhileActive) {
  ClassActivityTable table;
  table.OnBegin(4);
  EXPECT_FALSE(table.ComputableAt(5));
  EXPECT_EQ(table.LatestEndAt(5).status().code(), StatusCode::kBusy);
  // Computable for times before the active txn started.
  EXPECT_TRUE(table.ComputableAt(3));
  ASSERT_TRUE(table.LatestEndAt(3).ok());
  table.OnFinish(4, 8);
  EXPECT_TRUE(table.ComputableAt(5));
  auto c_late = table.LatestEndAt(5);
  ASSERT_TRUE(c_late.ok());
  EXPECT_EQ(*c_late, 8u);
}

TEST(ActivityTableTest, OldestActiveNow) {
  ClassActivityTable table;
  EXPECT_EQ(table.OldestActiveNow(), kTimestampInfinity);
  table.OnBegin(7);
  table.OnBegin(4);
  EXPECT_EQ(table.OldestActiveNow(), 4u);
  table.OnFinish(4, 9);
  EXPECT_EQ(table.OldestActiveNow(), 7u);
}

TEST(ActivityTableTest, IOldIsMonotone) {
  // Property 0.2 (used throughout the paper's proofs): m <= m' implies
  // I_old(m) <= I_old(m'). Randomized check.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    ClassActivityTable table;
    Timestamp now = 1;
    std::vector<Timestamp> open;
    for (int step = 0; step < 60; ++step) {
      if (!open.empty() && rng.NextBool(0.5)) {
        const std::size_t pick = rng.NextBounded(open.size());
        table.OnFinish(open[pick], ++now);
        open.erase(open.begin() + static_cast<long>(pick));
      } else {
        table.OnBegin(++now);
        open.push_back(now);
      }
    }
    Timestamp prev = 0;
    for (Timestamp m = 1; m <= now + 5; ++m) {
      const Timestamp value = table.OldestActiveAt(m);
      EXPECT_GE(value, prev) << "I_old not monotone at m=" << m;
      EXPECT_LE(value, m);
      prev = value;
    }
  }
}

TEST(ActivityTableTest, MergeCombinesHistories) {
  ClassActivityTable a, b;
  a.OnBegin(2);
  a.OnFinish(2, 6);
  b.OnBegin(3);
  b.OnFinish(3, 8);
  b.OnBegin(10);
  a.MergeFrom(std::move(b));
  EXPECT_EQ(a.OldestActiveAt(4), 2u);
  EXPECT_EQ(a.OldestActiveAt(7), 3u);
  EXPECT_EQ(a.OldestActiveNow(), 10u);
  EXPECT_EQ(a.history_size(), 2u);
}

TEST(ActivityTableTest, TrimDropsOldRecords) {
  ClassActivityTable table;
  table.OnBegin(1);
  table.OnFinish(1, 3);
  table.OnBegin(4);
  table.OnFinish(4, 10);
  EXPECT_EQ(table.history_size(), 2u);
  table.TrimFinishedBefore(5);
  EXPECT_EQ(table.history_size(), 1u);
  // The record straddling later times survives.
  EXPECT_EQ(table.OldestActiveAt(7), 4u);
}

}  // namespace
}  // namespace hdd
