#include "txn/dependency_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace hdd {
namespace {

constexpr GranuleRef kX{0, 0};
constexpr GranuleRef kY{0, 1};

class ScheduleBuilder {
 public:
  ScheduleBuilder& Read(TxnId t, GranuleRef g, std::uint64_t version) {
    recorder_.RecordRead(t, g, version);
    return *this;
  }
  ScheduleBuilder& Write(TxnId t, GranuleRef g, std::uint64_t version) {
    recorder_.RecordWrite(t, g, version);
    return *this;
  }
  ScheduleBuilder& Commit(TxnId t) {
    recorder_.RecordOutcome(t, TxnState::kCommitted);
    return *this;
  }
  ScheduleBuilder& Abort(TxnId t) {
    recorder_.RecordOutcome(t, TxnState::kAborted);
    return *this;
  }
  const ScheduleRecorder& recorder() const { return recorder_; }

 private:
  ScheduleRecorder recorder_;
};

TEST(DependencyGraphTest, ReadsFromArc) {
  ScheduleBuilder b;
  b.Write(1, kX, 10).Read(2, kX, 10).Commit(1).Commit(2);
  auto analysis =
      BuildDependencyGraph(b.recorder().steps(), b.recorder().outcomes());
  ASSERT_EQ(analysis.graph.num_nodes(), 2);
  // t2 depends on t1.
  EXPECT_TRUE(analysis.graph.HasArc(analysis.node_of_txn[2],
                                    analysis.node_of_txn[1]));
  EXPECT_EQ(analysis.graph.num_arcs(), 1u);
}

TEST(DependencyGraphTest, AntiDependencyArc) {
  // t1 reads initial version 0 of x; t2 then writes version 10 of x.
  // The paper's rule (2): t2 created a version whose predecessor t1 read,
  // so t2 -> t1.
  ScheduleBuilder b;
  b.Read(1, kX, 0).Write(2, kX, 10).Commit(1).Commit(2);
  auto analysis =
      BuildDependencyGraph(b.recorder().steps(), b.recorder().outcomes());
  EXPECT_TRUE(analysis.graph.HasArc(analysis.node_of_txn[2],
                                    analysis.node_of_txn[1]));
}

TEST(DependencyGraphTest, AbortedTxnExcluded) {
  ScheduleBuilder b;
  b.Write(1, kX, 10).Read(2, kX, 10).Abort(1).Commit(2);
  auto analysis =
      BuildDependencyGraph(b.recorder().steps(), b.recorder().outcomes());
  EXPECT_EQ(analysis.graph.num_nodes(), 1);
  EXPECT_EQ(analysis.graph.num_arcs(), 0u);
}

TEST(DependencyGraphTest, ActiveTxnExcluded) {
  ScheduleBuilder b;
  b.Write(1, kX, 10).Commit(1).Read(2, kX, 10);  // t2 never finishes
  auto analysis =
      BuildDependencyGraph(b.recorder().steps(), b.recorder().outcomes());
  EXPECT_EQ(analysis.graph.num_nodes(), 1);
}

TEST(DependencyGraphTest, VersionOrderArcsOptional) {
  ScheduleBuilder b;
  b.Write(1, kX, 10).Write(2, kX, 20).Commit(1).Commit(2);
  DependencyGraphOptions paper_tg;
  paper_tg.include_version_order_arcs = false;
  auto plain = BuildDependencyGraph(b.recorder().steps(),
                                    b.recorder().outcomes(), paper_tg);
  EXPECT_EQ(plain.graph.num_arcs(), 0u);  // paper's TG has no ww arcs
  auto mvsg =
      BuildDependencyGraph(b.recorder().steps(), b.recorder().outcomes());
  EXPECT_TRUE(
      mvsg.graph.HasArc(mvsg.node_of_txn[2], mvsg.node_of_txn[1]));
}

TEST(DependencyGraphTest, PaperTgMissesLostUpdateMvsgCatchesIt) {
  // Figure 1 under the paper's literal TG definition: the only arc is
  // t1 -> t2 (t1 wrote the successor of the version t2 read), so the
  // paper-mode graph is acyclic; sound (default) mode adds the ww arc
  // t2 -> t1 and exposes the cycle.
  ScheduleBuilder b;
  b.Read(1, kX, 0)
      .Read(2, kX, 0)
      .Write(1, kX, 10)
      .Write(2, kX, 20)
      .Commit(1)
      .Commit(2);
  DependencyGraphOptions paper_tg;
  paper_tg.include_version_order_arcs = false;
  auto report_paper =
      CheckSerializability(b.recorder().steps(), b.recorder().outcomes(),
                           paper_tg);
  EXPECT_TRUE(report_paper.serializable);
  auto report_sound = CheckSerializability(b.recorder());
  EXPECT_FALSE(report_sound.serializable);
}

TEST(DependencyGraphTest, SelfDependenciesIgnored) {
  ScheduleBuilder b;
  b.Write(1, kX, 10).Read(1, kX, 10).Commit(1);
  auto analysis =
      BuildDependencyGraph(b.recorder().steps(), b.recorder().outcomes());
  EXPECT_EQ(analysis.graph.num_arcs(), 0u);
}

// The paper's Figure 1 lost-update schedule:
//   t1 reads balance(100), t2 reads balance, t1 writes 150, t2 writes 50.
// Both committed: t2's write's predecessor (version by t1) was NOT read by
// t2 -- t2 read version 0 whose successor is t1's version, giving
// t1 => depends arcs both ways: cycle.
TEST(SerializabilityTest, Figure1LostUpdateIsNotSerializable) {
  ScheduleBuilder b;
  b.Read(1, kX, 0)
      .Read(2, kX, 0)
      .Write(1, kX, 10)
      .Write(2, kX, 20)
      .Commit(1)
      .Commit(2);
  auto report = CheckSerializability(b.recorder());
  EXPECT_FALSE(report.serializable);
  ASSERT_GE(report.witness_cycle.size(), 3u);
  EXPECT_EQ(report.witness_cycle.front(), report.witness_cycle.back());
}

TEST(SerializabilityTest, SerialScheduleIsSerializable) {
  ScheduleBuilder b;
  b.Read(1, kX, 0).Write(1, kX, 10).Commit(1);
  b.Read(2, kX, 10).Write(2, kX, 20).Commit(2);
  auto report = CheckSerializability(b.recorder());
  EXPECT_TRUE(report.serializable);
  ASSERT_EQ(report.serial_order.size(), 2u);
  EXPECT_EQ(report.serial_order[0], 1u);
  EXPECT_EQ(report.serial_order[1], 2u);
}

TEST(SerializabilityTest, MultiVersionReadOldIsSerializable) {
  // t2 writes a new version of x while t1 still reads the old one; with
  // versions this is equivalent to serial t1 then t2.
  ScheduleBuilder b;
  b.Write(2, kX, 20).Read(1, kX, 0).Commit(2).Commit(1);
  auto report = CheckSerializability(b.recorder());
  EXPECT_TRUE(report.serializable);
  // t2 depends on t1 (anti-dependency), so t1 serializes first.
  ASSERT_EQ(report.serial_order.size(), 2u);
  EXPECT_EQ(report.serial_order[0], 1u);
}

TEST(SerializabilityTest, ThreeTxnCycleDetected) {
  // t1 -> t2 -> t3 -> t1 through two granules.
  ScheduleBuilder b;
  // t2 reads x written by t1: t2 -> t1.
  b.Write(1, kX, 10).Read(2, kX, 10);
  // t3 reads y written by t2: t3 -> t2.
  b.Write(2, kY, 10).Read(3, kY, 10);
  // t1 creates successor of version of x read by t3? Use anti-dependency:
  // t1 reads z=initial y version? Simpler: t1 reads y version 0, then t3's
  // y write is version 10... but t2 wrote y10; make t3 write y20 and t1
  // read y10's predecessor chain: t1 reads y0, successor y10 creator t2 —
  // that gives t2->t1 not t1->t3. Instead close the cycle with t1 reading
  // a granule version created by t3.
  constexpr GranuleRef kZ{0, 2};
  b.Write(3, kZ, 10).Read(1, kZ, 10);  // t1 -> t3
  b.Commit(1).Commit(2).Commit(3);
  auto report = CheckSerializability(b.recorder());
  EXPECT_FALSE(report.serializable);
  // Witness must mention all three transactions.
  auto in_cycle = [&](TxnId t) {
    return std::find(report.witness_cycle.begin(),
                     report.witness_cycle.end(),
                     t) != report.witness_cycle.end();
  };
  EXPECT_TRUE(in_cycle(1));
  EXPECT_TRUE(in_cycle(2));
  EXPECT_TRUE(in_cycle(3));
}

TEST(SerializabilityTest, SerialOrderRespectsAllArcs) {
  ScheduleBuilder b;
  b.Write(1, kX, 10).Read(2, kX, 10).Write(2, kY, 20).Read(3, kY, 20);
  b.Commit(1).Commit(2).Commit(3);
  auto report = CheckSerializability(b.recorder());
  ASSERT_TRUE(report.serializable);
  auto pos = [&](TxnId t) {
    return std::find(report.serial_order.begin(), report.serial_order.end(),
                     t) -
           report.serial_order.begin();
  };
  EXPECT_LT(pos(1), pos(2));
  EXPECT_LT(pos(2), pos(3));
}

TEST(SerializabilityTest, EmptyScheduleIsSerializable) {
  ScheduleRecorder recorder;
  auto report = CheckSerializability(recorder);
  EXPECT_TRUE(report.serializable);
  EXPECT_TRUE(report.serial_order.empty());
}

TEST(ScheduleRecorderTest, SequenceNumbersIncrease) {
  ScheduleRecorder recorder;
  recorder.RecordRead(1, kX, 0);
  recorder.RecordWrite(1, kX, 10);
  recorder.RecordRead(2, kX, 10);
  const auto steps = recorder.steps();
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_LT(steps[0].seq, steps[1].seq);
  EXPECT_LT(steps[1].seq, steps[2].seq);
}

TEST(ScheduleRecorderTest, ClearResets) {
  ScheduleRecorder recorder;
  recorder.RecordRead(1, kX, 0);
  recorder.RecordOutcome(1, TxnState::kCommitted);
  recorder.Clear();
  EXPECT_TRUE(recorder.steps().empty());
  EXPECT_TRUE(recorder.outcomes().empty());
}

}  // namespace
}  // namespace hdd
