#include "graph/auto_decompose.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "graph/dhg.h"
#include "graph/semi_tree.h"

namespace hdd {
namespace {

// ---------------------------------------------------------------------------
// FootprintTrace accumulation.

TEST(FootprintTraceTest, DeduplicatesSignaturesAndCounts) {
  FootprintTrace trace;
  trace.Add({1, 0}, {2});
  trace.Add({0, 1}, {2});  // same signature, different order
  trace.Add({0}, {});
  EXPECT_EQ(trace.num_transactions(), 3u);
  ASSERT_EQ(trace.types().size(), 2u);
  EXPECT_EQ(trace.types()[0].count, 2u);
  EXPECT_EQ(trace.types()[0].observed_count, 2u);
  EXPECT_EQ(trace.granule_upper_bound(), 3u);
}

TEST(FootprintTraceTest, WritesDominateRereads) {
  FootprintTrace trace;
  trace.Add({3}, {3, 4});
  ASSERT_EQ(trace.types().size(), 1u);
  EXPECT_EQ(trace.types()[0].read_granules, std::vector<std::uint32_t>{4});
}

TEST(FootprintTraceTest, NoWritesMeansReadOnly) {
  FootprintTrace trace;
  trace.Add({}, {0, 1});
  ASSERT_EQ(trace.types().size(), 1u);
  EXPECT_TRUE(trace.types()[0].read_only);
}

TEST(FootprintTraceTest, DeclaredCountsSeparately) {
  FootprintTrace trace;
  trace.Add({0, 1}, {}, /*declared=*/true);
  trace.Add({0, 1}, {}, /*declared=*/false);
  ASSERT_EQ(trace.types().size(), 1u);
  EXPECT_EQ(trace.types()[0].count, 2u);
  EXPECT_EQ(trace.types()[0].observed_count, 1u);
}

TEST(FootprintTraceTest, MergeFoldsCountsAndBounds) {
  FootprintTrace a;
  a.Add({0}, {1});
  FootprintTrace b;
  b.Add({0}, {1});
  b.Add({7}, {});
  a.Merge(b);
  EXPECT_EQ(a.num_transactions(), 3u);
  ASSERT_EQ(a.types().size(), 2u);
  EXPECT_EQ(a.types()[0].count, 2u);
  EXPECT_EQ(a.granule_upper_bound(), 8u);
}

// ---------------------------------------------------------------------------
// Conflict-graph distance (the drift signal).

TEST(ConflictDistanceTest, IdenticalTracesAtZero) {
  FootprintTrace a;
  a.Add({0}, {1});
  a.Add({2}, {0});
  FootprintTrace b;
  b.Add({0}, {1});
  b.Add({2}, {0});
  EXPECT_DOUBLE_EQ(ConflictDistance(a, b), 0.0);
}

TEST(ConflictDistanceTest, ScaleInvariant) {
  FootprintTrace a;
  a.Add({0}, {1});
  FootprintTrace b;
  for (int i = 0; i < 10; ++i) b.Add({0}, {1});
  EXPECT_DOUBLE_EQ(ConflictDistance(a, b), 0.0);
}

TEST(ConflictDistanceTest, DisjointTracesAtOne) {
  FootprintTrace a;
  a.Add({0}, {1});
  FootprintTrace b;
  b.Add({5}, {6});
  EXPECT_DOUBLE_EQ(ConflictDistance(a, b), 1.0);
}

TEST(ConflictDistanceTest, EmptyTraceConventions) {
  FootprintTrace empty;
  FootprintTrace full;
  full.Add({0}, {1});
  EXPECT_DOUBLE_EQ(ConflictDistance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(ConflictDistance(empty, full), 1.0);
  EXPECT_DOUBLE_EQ(ConflictDistance(full, empty), 1.0);
}

TEST(ConflictDistanceTest, PartialOverlapStrictlyBetween) {
  FootprintTrace a;
  a.Add({0}, {1});
  a.Add({2}, {3});
  FootprintTrace b;
  b.Add({0}, {1});
  b.Add({5}, {6});
  const double d = ConflictDistance(a, b);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
}

// ---------------------------------------------------------------------------
// Satellite: property test over seeded random workloads. The inferred
// decomposition must be a valid TST, cover every traced granule with
// exactly one class, and contain every observed conflict edge under
// Protocol A/B — re-checked here from first principles (IsSemiTree /
// TstAnalysis), not only through ValidateDecomposition.

FootprintTrace RandomTrace(Rng& rng, std::uint32_t num_granules) {
  FootprintTrace trace;
  const int num_types = static_cast<int>(rng.NextInRange(1, 8));
  for (int t = 0; t < num_types; ++t) {
    std::vector<std::uint32_t> writes;
    std::vector<std::uint32_t> reads;
    const int n_writes = static_cast<int>(rng.NextInRange(1, 3));
    for (int i = 0; i < n_writes; ++i) {
      writes.push_back(static_cast<std::uint32_t>(
          rng.NextBounded(num_granules)));
    }
    const int n_reads = static_cast<int>(rng.NextInRange(0, 4));
    for (int i = 0; i < n_reads; ++i) {
      reads.push_back(static_cast<std::uint32_t>(
          rng.NextBounded(num_granules)));
    }
    const int copies = static_cast<int>(rng.NextInRange(1, 9));
    for (int c = 0; c < copies; ++c) trace.Add(writes, reads);
  }
  // Occasionally a read-only scan.
  if (rng.NextBool(0.5)) {
    trace.Add({}, {0, num_granules - 1});
  }
  return trace;
}

TEST(InferPropertyTest, RandomWorkloadsYieldValidCoveredContainedTst) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    const std::uint32_t num_granules =
        static_cast<std::uint32_t>(rng.NextInRange(4, 40));
    const FootprintTrace trace = RandomTrace(rng, num_granules);
    InferenceOptions options;
    options.min_support = static_cast<std::uint64_t>(rng.NextInRange(1, 3));
    auto inferred = InferBestDecomposition(num_granules, trace, options);
    ASSERT_TRUE(inferred.ok()) << "seed " << seed << ": "
                               << inferred.status();
    const Decomposition& dec = inferred->decomposition;

    // The shared validation pass accepts it...
    ASSERT_TRUE(ValidateDecomposition(dec, num_granules).ok()) << seed;
    ASSERT_TRUE(ValidateAgainstTrace(dec, trace, options.min_support).ok())
        << seed;

    // ...and so do the first-principles checks. Semi-tree invariants:
    ASSERT_TRUE(IsTransitiveSemiTree(dec.dhg)) << "seed " << seed;
    ASSERT_TRUE(IsSemiTree(TransitiveReduction(dec.dhg))) << "seed " << seed;
    auto tst = TstAnalysis::Create(dec.dhg);
    ASSERT_TRUE(tst.ok()) << "seed " << seed;

    // Every traced granule covered by exactly one class:
    ASSERT_EQ(dec.granule_segment.size(), num_granules) << seed;
    for (std::uint32_t g = 0; g < num_granules; ++g) {
      ASSERT_GE(dec.granule_segment[g], 0) << seed;
      ASSERT_LT(dec.granule_segment[g], dec.num_segments) << seed;
    }

    // Every observed conflict edge containable by Protocol A/B: for each
    // update signature, all writes in one segment (Protocol B meets w-w
    // and own w-r conflicts in that class) and every cross-segment read
    // aimed at a strictly higher segment (Protocol A).
    for (const TracedFootprint& type : trace.types()) {
      if (type.read_only) continue;
      const int root = dec.granule_segment[type.write_granules[0]];
      for (std::uint32_t w : type.write_granules) {
        ASSERT_EQ(dec.granule_segment[w], root) << "seed " << seed;
      }
      for (std::uint32_t r : type.read_granules) {
        const int s = dec.granule_segment[r];
        ASSERT_TRUE(s == root || tst->Higher(s, root))
            << "seed " << seed << " read granule " << r;
      }
    }

    // The declared-spec rendering of the structure is accepted by the
    // schema validator — the same gate a controller construction runs.
    auto schema = HierarchySchema::Create(inferred->spec);
    ASSERT_TRUE(schema.ok()) << "seed " << seed << ": " << schema.status();
  }
}

// ---------------------------------------------------------------------------
// Min-support pruning semantics.

TEST(InferTest, ObservedRareTypeIsAlwaysContained) {
  FootprintTrace trace;
  for (int i = 0; i < 20; ++i) trace.Add({0}, {});
  for (int i = 0; i < 20; ++i) trace.Add({1}, {});
  trace.Add({0, 1}, {});  // observed once: a fact, must be contained
  InferenceOptions options;
  options.min_support = 10;
  auto inferred = InferDecomposition(2, trace, options);
  ASSERT_TRUE(inferred.ok()) << inferred.status();
  EXPECT_EQ(inferred->decomposition.granule_segment[0],
            inferred->decomposition.granule_segment[1]);
  EXPECT_EQ(inferred->types_restored, 1u);
}

TEST(InferTest, DeclaredRareIntentStaysPruned) {
  FootprintTrace trace;
  for (int i = 0; i < 20; ++i) trace.Add({0}, {});
  for (int i = 0; i < 20; ++i) trace.Add({1}, {});
  trace.Add({0, 1}, {}, /*declared=*/true);  // announced once, never ran
  InferenceOptions options;
  options.min_support = 10;
  auto inferred = InferDecomposition(2, trace, options);
  ASSERT_TRUE(inferred.ok()) << inferred.status();
  // The hierarchy stays fine-grained: the declared one-off did not merge.
  EXPECT_NE(inferred->decomposition.granule_segment[0],
            inferred->decomposition.granule_segment[1]);
  EXPECT_EQ(inferred->types_restored, 0u);
  EXPECT_EQ(inferred->types_pruned, 1u);
  // At the bar, the same intent does merge.
  FootprintTrace heavy = trace;
  for (int i = 0; i < 10; ++i) heavy.Add({0, 1}, {}, /*declared=*/true);
  auto merged = InferDecomposition(2, heavy, options);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->decomposition.granule_segment[0],
            merged->decomposition.granule_segment[1]);
}

TEST(InferTest, BestDecompositionPrefersCheaperStructure) {
  // Two independent writer types plus a reader of both: the inferred
  // hierarchy should keep three segments (cross reads ride Protocol A at
  // link_eval cost) rather than collapse into one class.
  FootprintTrace trace;
  for (int i = 0; i < 10; ++i) trace.Add({0}, {});
  for (int i = 0; i < 10; ++i) trace.Add({1}, {});
  for (int i = 0; i < 10; ++i) trace.Add({2}, {0, 1});
  auto inferred = InferBestDecomposition(3, trace, {});
  ASSERT_TRUE(inferred.ok()) << inferred.status();
  EXPECT_EQ(inferred->decomposition.num_segments, 3);
  EXPECT_GT(inferred->modeled_cost_us, 0.0);
}

TEST(InferTest, EmptyTraceRejected) {
  FootprintTrace empty;
  EXPECT_FALSE(InferDecomposition(4, empty, {}).ok());
  FootprintTrace read_only;
  read_only.Add({}, {0});
  EXPECT_FALSE(InferDecomposition(4, read_only, {}).ok());
}

// ---------------------------------------------------------------------------
// Satellite: regression for the decompose_tool gap — malformed
// decompositions must be rejected loudly by the shared validation pass.

TEST(ValidateTest, RejectsIncompleteGranuleCover) {
  Decomposition dec;
  dec.granule_segment = {0, 0};  // claims 2 granules
  dec.num_segments = 1;
  dec.dhg = Digraph(1);
  EXPECT_FALSE(ValidateDecomposition(dec, 3).ok());
}

TEST(ValidateTest, RejectsOutOfRangeSegment) {
  Decomposition dec;
  dec.granule_segment = {0, 5};
  dec.num_segments = 2;
  dec.dhg = Digraph(2);
  const Status s = ValidateDecomposition(dec, 2);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("outside"), std::string::npos);
}

TEST(ValidateTest, RejectsDiamondDhg) {
  Decomposition dec;
  dec.granule_segment = {0, 1, 2, 3};
  dec.num_segments = 4;
  Digraph diamond(4);
  diamond.AddArc(3, 1);
  diamond.AddArc(3, 2);
  diamond.AddArc(1, 0);
  diamond.AddArc(2, 0);
  dec.dhg = diamond;
  const Status s = ValidateDecomposition(dec, 4);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("semi-tree"), std::string::npos);
}

TEST(ValidateTest, RejectsDhgSegmentCountMismatch) {
  Decomposition dec;
  dec.granule_segment = {0, 1};
  dec.num_segments = 2;
  dec.dhg = Digraph(3);
  EXPECT_FALSE(ValidateDecomposition(dec, 2).ok());
}

TEST(ValidateTest, RejectsCoWriteSplitAgainstTrace) {
  FootprintTrace trace;
  trace.Add({0, 1}, {});
  Decomposition dec;
  dec.granule_segment = {0, 1};  // the co-written pair split apart
  dec.num_segments = 2;
  dec.dhg = Digraph(2);
  ASSERT_TRUE(ValidateDecomposition(dec, 2).ok());  // structurally fine...
  EXPECT_FALSE(ValidateAgainstTrace(dec, trace).ok());  // ...but a lie.
}

TEST(ValidateTest, RejectsUncontainableRead) {
  FootprintTrace trace;
  trace.Add({0}, {1});
  Decomposition dec;
  dec.granule_segment = {0, 1};
  dec.num_segments = 2;
  dec.dhg = Digraph(2);  // no arc: segment 1 is not higher than 0
  EXPECT_FALSE(ValidateAgainstTrace(dec, trace).ok());
}

// ---------------------------------------------------------------------------
// The mutation canary: a mis-classified granule must never survive the
// validation pass that guards every hot-swap.

TEST(CanaryTest, MisclassifiedGranuleIsCaught) {
  FootprintTrace trace;
  for (int i = 0; i < 8; ++i) trace.Add({0, 1}, {});  // co-writers
  for (int i = 0; i < 8; ++i) trace.Add({2}, {0});
  InferenceOptions options;
  options.mutation_misclassify_granule = true;
  auto mutated = InferBestDecomposition(3, trace, options);
  ASSERT_TRUE(mutated.ok()) << mutated.status();
  ASSERT_TRUE(mutated->mutated);
  // Structural validation may pass (the mutation keeps ids in range) —
  // the trace containment check is the net that must catch it.
  EXPECT_FALSE(
      ValidateAgainstTrace(mutated->decomposition, trace).ok());
  // The same inference without the canary is clean.
  options.mutation_misclassify_granule = false;
  auto clean = InferBestDecomposition(3, trace, options);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->mutated);
  EXPECT_TRUE(ValidateAgainstTrace(clean->decomposition, trace).ok());
}

TEST(CanaryTest, CaughtAcrossRandomWorkloads) {
  int fired = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed + 1000);
    const std::uint32_t num_granules =
        static_cast<std::uint32_t>(rng.NextInRange(4, 24));
    const FootprintTrace trace = RandomTrace(rng, num_granules);
    InferenceOptions options;
    options.mutation_misclassify_granule = true;
    auto inferred = InferBestDecomposition(num_granules, trace, options);
    ASSERT_TRUE(inferred.ok()) << seed;
    if (!inferred->mutated) continue;  // single-segment result: no wrong id
    ++fired;
    const bool structural_ok =
        ValidateDecomposition(inferred->decomposition, num_granules).ok();
    const bool trace_ok =
        ValidateAgainstTrace(inferred->decomposition, trace).ok();
    ASSERT_FALSE(structural_ok && trace_ok)
        << "seed " << seed << ": mutation escaped both validators";
  }
  EXPECT_GT(fired, 0);
}

}  // namespace
}  // namespace hdd
