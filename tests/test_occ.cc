#include "cc/occ.h"

#include <gtest/gtest.h>

#include "txn/dependency_graph.h"

namespace hdd {
namespace {

constexpr GranuleRef kX{0, 0};
constexpr GranuleRef kY{0, 1};

class OccTest : public ::testing::Test {
 protected:
  OccTest() : db_(1, 4, 0) {}

  Database db_;
  LogicalClock clock_;
};

TEST_F(OccTest, ReadWriteCommit) {
  Occ cc(&db_, &clock_);
  auto txn = cc.Begin({});
  ASSERT_TRUE(cc.Write(*txn, kX, 7).ok());
  auto value = cc.Read(*txn, kX);  // own buffered write
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 7);
  ASSERT_TRUE(cc.Commit(*txn).ok());

  auto later = cc.Begin({});
  auto later_value = cc.Read(*later, kX);
  ASSERT_TRUE(later_value.ok());
  EXPECT_EQ(*later_value, 7);
  ASSERT_TRUE(cc.Commit(*later).ok());
}

TEST_F(OccTest, WritesInvisibleUntilCommit) {
  Occ cc(&db_, &clock_);
  auto writer = cc.Begin({});
  ASSERT_TRUE(cc.Write(*writer, kX, 5).ok());
  auto reader = cc.Begin({});
  auto value = cc.Read(*reader, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0);  // nothing installed yet
  ASSERT_TRUE(cc.Commit(*reader).ok());
  ASSERT_TRUE(cc.Commit(*writer).ok());
}

TEST_F(OccTest, ValidationAbortsStaleReader) {
  Occ cc(&db_, &clock_);
  auto t1 = cc.Begin({});
  ASSERT_TRUE(cc.Read(*t1, kX).ok());
  // t2 commits a write to x while t1 is still running.
  auto t2 = cc.Begin({});
  ASSERT_TRUE(cc.Write(*t2, kX, 9).ok());
  ASSERT_TRUE(cc.Commit(*t2).ok());
  // t1's read is now stale: validation must abort it.
  EXPECT_EQ(cc.Commit(*t1).code(), StatusCode::kAborted);
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST_F(OccTest, DisjointConcurrentTxnsBothCommit) {
  Occ cc(&db_, &clock_);
  auto t1 = cc.Begin({});
  auto t2 = cc.Begin({});
  ASSERT_TRUE(cc.Read(*t1, kX).ok());
  ASSERT_TRUE(cc.Write(*t1, kX, 1).ok());
  ASSERT_TRUE(cc.Read(*t2, kY).ok());
  ASSERT_TRUE(cc.Write(*t2, kY, 2).ok());
  EXPECT_TRUE(cc.Commit(*t1).ok());
  EXPECT_TRUE(cc.Commit(*t2).ok());
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST_F(OccTest, LostUpdatePrevented) {
  // The Figure 1 race: both read, both write; the second to commit must
  // fail validation.
  Occ cc(&db_, &clock_);
  auto t1 = cc.Begin({});
  auto t2 = cc.Begin({});
  ASSERT_TRUE(cc.Read(*t1, kX).ok());
  ASSERT_TRUE(cc.Read(*t2, kX).ok());
  ASSERT_TRUE(cc.Write(*t1, kX, 50).ok());
  ASSERT_TRUE(cc.Write(*t2, kX, -50).ok());
  EXPECT_TRUE(cc.Commit(*t1).ok());
  EXPECT_EQ(cc.Commit(*t2).code(), StatusCode::kAborted);
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST_F(OccTest, NoReadRegistrationEver) {
  Occ cc(&db_, &clock_);
  auto txn = cc.Begin({});
  ASSERT_TRUE(cc.Read(*txn, kX).ok());
  ASSERT_TRUE(cc.Read(*txn, kY).ok());
  ASSERT_TRUE(cc.Commit(*txn).ok());
  EXPECT_EQ(cc.metrics().read_locks_acquired.load(), 0u);
  EXPECT_EQ(cc.metrics().read_timestamps_written.load(), 0u);
  EXPECT_EQ(cc.metrics().unregistered_reads.load(), 2u);
  EXPECT_EQ(cc.metrics().blocked_reads.load(), 0u);
}

TEST_F(OccTest, AbortedReadsNeverEnterTheSchedule) {
  Occ cc(&db_, &clock_);
  auto txn = cc.Begin({});
  ASSERT_TRUE(cc.Read(*txn, kX).ok());
  ASSERT_TRUE(cc.Abort(*txn).ok());
  EXPECT_TRUE(cc.recorder().steps().empty());
}

TEST_F(OccTest, PrunedHistoryAbortsConservatively) {
  OccOptions options;
  options.history_limit = 2;
  Occ cc(&db_, &clock_, options);
  auto old_txn = cc.Begin({});
  ASSERT_TRUE(cc.Read(*old_txn, kY).ok());
  // Push 3 writer commits through: the oldest record is pruned.
  for (int i = 0; i < 3; ++i) {
    auto w = cc.Begin({});
    ASSERT_TRUE(cc.Write(*w, kX, i).ok());
    ASSERT_TRUE(cc.Commit(*w).ok());
  }
  // old_txn cannot prove its reads valid anymore.
  EXPECT_EQ(cc.Commit(*old_txn).code(), StatusCode::kAborted);
}

TEST_F(OccTest, BlindWritesCommitInOrder) {
  Occ cc(&db_, &clock_);
  auto t1 = cc.Begin({});
  auto t2 = cc.Begin({});
  ASSERT_TRUE(cc.Write(*t1, kX, 1).ok());
  ASSERT_TRUE(cc.Write(*t2, kX, 2).ok());
  EXPECT_TRUE(cc.Commit(*t1).ok());
  EXPECT_TRUE(cc.Commit(*t2).ok());  // blind write: no read to invalidate
  auto reader = cc.Begin({});
  auto value = cc.Read(*reader, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 2);  // last committer wins
  ASSERT_TRUE(cc.Commit(*reader).ok());
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

}  // namespace
}  // namespace hdd
