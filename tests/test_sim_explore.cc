// Deterministic-simulation model checker for the HDD protocols.
//
// Every test drives a small workload through the cooperative SimScheduler:
// worker threads are sim tasks, every interleaving decision is a seeded
// RNG draw (or a scripted choice), the logical clock is virtual, and the
// fault injector forces transaction aborts, mid-transaction crashes,
// delayed commits (stalls) and perturbed wakeups. Each completed history
// is checked against the full serializability oracle (CheckSimHistory);
// a failing seed is re-run and must reproduce its trace byte-for-byte,
// and the test prints a ready-to-paste replay command.
//
// The suite also carries its own canary: with the TEST-ONLY
// `mutation_unsafe_protocol_a` switch the controller serves Protocol A
// reads at the raw initiation time instead of the activity-link bound
// (violating Theorem 1), and the sweep MUST catch that with a replayable
// seed — a harness that cannot see the mutation is broken.
//
// Environment knobs (also used by ci/check.sh):
//   HDD_SIM_SEEDS       number of seeds in the big HDD sweep (default 2000)
//   HDD_SIM_FIRST_SEED  first seed of every sweep (default 1)

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cc/mvto.h"
#include "cc/two_phase_locking.h"
#include "engine/executor.h"
#include "engine/synthetic_workload.h"
#include "hdd/hdd_controller.h"
#include "sim/explorer.h"
#include "sim/sim_clock.h"
#include "sim/sim_scheduler.h"

namespace hdd {
namespace {

std::uint64_t EnvOr(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

std::uint64_t FirstSeed() { return EnvOr("HDD_SIM_FIRST_SEED", 1); }

// Fault mix used by the randomized sweeps: forced aborts, mid-transaction
// crashes, delayed commits (stalls), plus wakeup perturbations.
FaultInjectorConfig SweepFaults() {
  FaultInjectorConfig faults;
  faults.abort_prob = 0.15;
  faults.crash_prob = 0.05;
  faults.stall_prob = 0.15;
  faults.spurious_wakeup_prob = 0.05;
  faults.delayed_wakeup_prob = 0.10;
  return faults;
}

struct WorkloadShape {
  SyntheticWorkloadParams params;
  int threads = 3;
  std::uint64_t txns = 9;
  int max_retries = 50;
};

WorkloadShape HddShape() {
  WorkloadShape shape;
  shape.params.depth = 3;
  shape.params.granules_per_segment = 3;
  shape.params.own_reads = 1;
  shape.params.own_writes = 2;
  shape.params.upper_reads = 2;
  shape.params.read_only_fraction = 0.3;
  return shape;
}

// One simulated HDD run: fresh database + controller, virtual clock,
// workers as sim tasks, then the full oracle over the recorded history.
SimWorkloadFn HddWorkload(WorkloadShape shape,
                          HddControllerOptions copts = {}) {
  return [shape, copts](SimScheduler& sched) -> std::string {
    SyntheticWorkload workload(shape.params);
    auto schema = HierarchySchema::Create(workload.Spec());
    if (!schema.ok()) return schema.status().ToString();
    auto db = workload.MakeDatabase();
    SimClock clock(&sched);
    HddController cc(db.get(), &clock, &*schema, copts);

    ExecutorOptions options;
    options.num_threads = shape.threads;
    options.seed = 77;  // workload mix; interleavings come from `sched`
    options.max_retries = shape.max_retries;
    options.sim = &sched;
    (void)RunWorkload(cc, workload, shape.txns, options);
    if (sched.halted()) return "";  // RunSimulation reports the finding
    return CheckSimHistory(cc, *db, /*replay_bounds=*/true);
  };
}

// Same harness over the baseline controllers (no bounds to replay).
template <typename Controller, typename ControllerOptions>
SimWorkloadFn BaselineWorkload(WorkloadShape shape,
                               ControllerOptions copts = {}) {
  return [shape, copts](SimScheduler& sched) -> std::string {
    SyntheticWorkload workload(shape.params);
    auto db = workload.MakeDatabase();
    SimClock clock(&sched);
    Controller cc(db.get(), &clock, copts);

    ExecutorOptions options;
    options.num_threads = shape.threads;
    options.seed = 77;
    options.max_retries = shape.max_retries;
    options.sim = &sched;
    (void)RunWorkload(cc, workload, shape.txns, options);
    if (sched.halted()) return "";
    return CheckSimHistory(cc, *db, /*replay_bounds=*/false);
  };
}

void ExpectSweepClean(const SeedSweepReport& report, const char* label) {
  EXPECT_GT(report.runs, 0u) << label;
  for (const SimFailure& failure : report.failures) {
    ADD_FAILURE() << label << ": seed " << failure.seed << " failed: "
                  << failure.message << "\n  replay"
                  << (failure.replayed_identically
                          ? " (reproduces byte-for-byte): "
                          : " (DID NOT reproduce!): ")
                  << failure.replay_command;
  }
}

// ---------------------------------------------------------------------------
// The acceptance sweep: thousands of seeded schedules of an HDD workload
// under fault injection; every completed history must pass the 1SR oracle.
TEST(SimExplore, HddSeedSweepPassesOracle) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  const std::uint64_t seeds = EnvOr("HDD_SIM_SEEDS", 2000);
  const SeedSweepReport report =
      RunSeedSweep(base, FirstSeed(), seeds, HddWorkload(HddShape()),
                   "ctest -R test_sim_explore");
  ExpectSweepClean(report, "hdd");
  EXPECT_EQ(report.runs, seeds);
  // The sweep is only evidence if faults actually fired.
  EXPECT_GT(report.faults_injected, 0u);
}

TEST(SimExplore, MvtoSeedSweepPassesOracle) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  WorkloadShape shape = HddShape();
  shape.params.read_only_fraction = 0.0;  // MVTO has no Protocol C
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), EnvOr("HDD_SIM_BASELINE_SEEDS", 300),
      BaselineWorkload<Mvto, MvtoOptions>(shape, {}),
      "ctest -R test_sim_explore");
  ExpectSweepClean(report, "mvto");
}

TEST(SimExplore, TwoPhaseSeedSweepPassesOracle) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  WorkloadShape shape = HddShape();
  shape.params.read_only_fraction = 0.0;
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), EnvOr("HDD_SIM_BASELINE_SEEDS", 300),
      BaselineWorkload<TwoPhaseLocking, TwoPhaseLockingOptions>(shape, {}),
      "ctest -R test_sim_explore");
  ExpectSweepClean(report, "2pl");
}

// ---------------------------------------------------------------------------
// Replay: the same options must reproduce the identical trace, choices and
// verdict; a different seed must schedule differently.
TEST(SimExplore, DeterministicReplay) {
  SimScheduler::Options options;
  options.faults = SweepFaults();
  options.seed = 42;
  const SimWorkloadFn fn = HddWorkload(HddShape());
  const SimRunReport a = RunSimulation(options, fn);
  const SimRunReport b = RunSimulation(options, fn);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.choices, b.choices);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  ASSERT_FALSE(a.trace.empty());

  options.seed = 43;
  const SimRunReport c = RunSimulation(options, fn);
  EXPECT_NE(a.trace, c.trace);
}

// ---------------------------------------------------------------------------
// Bounded systematic exploration: enumerate every schedule of a tiny
// two-worker workload that differs in the first branching decisions, with
// faults off — stateless model checking over the scheduler's choice tree.
TEST(SimExplore, BoundedSystematicExploration) {
  WorkloadShape shape = HddShape();
  shape.threads = 2;
  shape.txns = 4;
  SimScheduler::Options base;  // Explore* forces scripted mode, no faults
  const ExploreReport report = ExploreBoundedSchedules(
      base, /*branch_depth=*/7, /*max_schedules=*/800,
      HddWorkload(shape));
  for (const SimFailure& failure : report.failures) {
    ADD_FAILURE() << "schedule " << failure.seed << " failed: "
                  << failure.message << "\n  " << failure.replay_command;
  }
  EXPECT_GT(report.schedules, 1u);
  EXPECT_TRUE(report.exhausted || report.schedules == 800u)
      << "explorer stopped after " << report.schedules
      << " schedules without exhausting the bounded space";
}

// ---------------------------------------------------------------------------
// The canary: with Protocol A mutated to serve raw initiation times
// (violating Theorem 1), the sweep must catch a violation and the failing
// seed must replay byte-for-byte.
TEST(SimExplore, CanaryMutationIsCaught) {
  HddControllerOptions copts;
  copts.mutation_unsafe_protocol_a = true;

  WorkloadShape shape = HddShape();
  shape.params.depth = 2;               // one class above, one below
  shape.params.granules_per_segment = 2;  // maximize cross-segment conflict
  shape.params.read_only_fraction = 0.2;
  shape.txns = 12;

  SimScheduler::Options base;  // no faults: scheduling alone must expose it
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), EnvOr("HDD_SIM_CANARY_SEEDS", 300),
      HddWorkload(shape, copts), "ctest -R test_sim_explore");
  ASSERT_FALSE(report.failures.empty())
      << "the unsafe-Protocol-A mutation survived " << report.runs
      << " seeds — the harness cannot detect the injected violation";
  const SimFailure& first = report.failures.front();
  EXPECT_TRUE(first.replayed_identically)
      << "seed " << first.seed << " failed but did not replay";
  // The replayable repro is the artifact the harness promises.
  std::cout << "canary caught at seed " << first.seed << ": "
            << first.message << "\n  replay: " << first.replay_command
            << std::endl;
}

// ---------------------------------------------------------------------------
// Scheduler-level unit test: two tasks block on channels nobody notifies;
// the scheduler must declare the run deadlocked and unwind both tasks with
// SimHalt rather than hang.
TEST(SimExplore, SchedulerDetectsDeadlock) {
  SimScheduler::Options options;
  SimScheduler sched(options);
  sched.ExpectTasks(2);

  auto starve = [&sched](int id, const void* channel) {
    std::mutex mu;
    try {
      sched.RegisterCurrentTask(id);
      std::unique_lock<std::mutex> lock(mu);
      for (;;) sched.BlockOn(channel, lock);
    } catch (const SimHalt&) {
    }
    sched.UnregisterCurrentTask();
  };
  const int ch_a = 0, ch_b = 0;
  std::thread a(starve, 0, &ch_a);
  std::thread b(starve, 1, &ch_b);
  a.join();
  b.join();

  EXPECT_TRUE(sched.halted());
  EXPECT_TRUE(sched.deadlocked());
  EXPECT_FALSE(sched.decision_limit_hit());
  EXPECT_NE(sched.halt_reason().find("deadlock"), std::string::npos)
      << sched.halt_reason();
}

// A busy-looping task must be stopped by the decision budget, reported as
// a suspected livelock rather than a deadlock.
TEST(SimExplore, DecisionBudgetBackstopsLivelock) {
  SimScheduler::Options options;
  options.max_decisions = 64;
  SimScheduler sched(options);
  sched.ExpectTasks(1);
  std::thread t([&sched] {
    try {
      sched.RegisterCurrentTask(0);
      for (;;) sched.Yield("test/spin", /*interruptible=*/true);
    } catch (const SimHalt&) {
    }
    sched.UnregisterCurrentTask();
  });
  t.join();
  EXPECT_TRUE(sched.halted());
  EXPECT_TRUE(sched.decision_limit_hit());
  EXPECT_FALSE(sched.deadlocked());
}

}  // namespace
}  // namespace hdd
