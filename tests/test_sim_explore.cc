// Deterministic-simulation model checker for the HDD protocols.
//
// Every test drives a small workload through the cooperative SimScheduler:
// worker threads are sim tasks, every interleaving decision is a seeded
// RNG draw (or a scripted choice), the logical clock is virtual, and the
// fault injector forces transaction aborts, mid-transaction crashes,
// delayed commits (stalls) and perturbed wakeups. Each completed history
// is checked against the full serializability oracle (CheckSimHistory);
// a failing seed is re-run and must reproduce its trace byte-for-byte,
// and the test prints a ready-to-paste replay command.
//
// The suite also carries its own canary: with the TEST-ONLY
// `mutation_unsafe_protocol_a` switch the controller serves Protocol A
// reads at the raw initiation time instead of the activity-link bound
// (violating Theorem 1), and the sweep MUST catch that with a replayable
// seed — a harness that cannot see the mutation is broken.
//
// Environment knobs (also used by ci/check.sh):
//   HDD_SIM_SEEDS           number of seeds in the big HDD sweep (default 2000)
//   HDD_SIM_FIRST_SEED      first seed of every sweep (default 1)
//   HDD_SIM_REDECOMP_SEEDS  seeds in the online re-decomposition drift
//                           sweep (default 500; the crash/epoch/canary
//                           variants have their own knobs, see below)

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cc/mvto.h"
#include "cc/two_phase_locking.h"
#include "engine/epoch_executor.h"
#include "engine/executor.h"
#include "engine/redecompose.h"
#include "engine/synthetic_workload.h"
#include "hdd/hdd_controller.h"
#include "obs/footprint.h"
#include "sim/explorer.h"
#include "sim/sim_clock.h"
#include "sim/sim_scheduler.h"
#include "wal/recovery.h"
#include "wal/wal_manager.h"
#include "wal/wal_storage.h"

namespace hdd {
namespace {

std::uint64_t EnvOr(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

std::uint64_t FirstSeed() { return EnvOr("HDD_SIM_FIRST_SEED", 1); }

// Fault mix used by the randomized sweeps: forced aborts, mid-transaction
// crashes, delayed commits (stalls), plus wakeup perturbations.
FaultInjectorConfig SweepFaults() {
  FaultInjectorConfig faults;
  faults.abort_prob = 0.15;
  faults.crash_prob = 0.05;
  faults.stall_prob = 0.15;
  faults.spurious_wakeup_prob = 0.05;
  faults.delayed_wakeup_prob = 0.10;
  return faults;
}

struct WorkloadShape {
  SyntheticWorkloadParams params;
  int threads = 3;
  std::uint64_t txns = 9;
  int max_retries = 50;
};

WorkloadShape HddShape() {
  WorkloadShape shape;
  shape.params.depth = 3;
  shape.params.granules_per_segment = 3;
  shape.params.own_reads = 1;
  shape.params.own_writes = 2;
  shape.params.upper_reads = 2;
  shape.params.read_only_fraction = 0.3;
  return shape;
}

// One simulated HDD run: fresh database + controller, virtual clock,
// workers as sim tasks, then the full oracle over the recorded history.
SimWorkloadFn HddWorkload(WorkloadShape shape,
                          HddControllerOptions copts = {}) {
  return [shape, copts](SimScheduler& sched) -> std::string {
    SyntheticWorkload workload(shape.params);
    auto schema = HierarchySchema::Create(workload.Spec());
    if (!schema.ok()) return schema.status().ToString();
    auto db = workload.MakeDatabase();
    SimClock clock(&sched);
    HddController cc(db.get(), &clock, &*schema, copts);

    ExecutorOptions options;
    options.num_threads = shape.threads;
    options.seed = 77;  // workload mix; interleavings come from `sched`
    options.max_retries = shape.max_retries;
    options.sim = &sched;
    (void)RunWorkload(cc, workload, shape.txns, options);
    if (sched.halted()) return "";  // RunSimulation reports the finding
    return CheckSimHistory(cc, *db, /*replay_bounds=*/true);
  };
}

// Same run under the epoch/batch executor: BeginEpoch/BeginBatch
// admission, per-epoch dependency graph, shared Protocol A bounds — every
// interleaving still the scheduler's, every history through the same
// oracle. `skip_edge` arms the epoch executor's mutation canary.
SimWorkloadFn HddEpochWorkload(WorkloadShape shape, std::uint64_t epoch_size,
                               HddControllerOptions copts = {},
                               bool skip_edge = false) {
  return [shape, epoch_size, copts, skip_edge](
             SimScheduler& sched) -> std::string {
    SyntheticWorkload workload(shape.params);
    auto schema = HierarchySchema::Create(workload.Spec());
    if (!schema.ok()) return schema.status().ToString();
    auto db = workload.MakeDatabase();
    SimClock clock(&sched);
    HddController cc(db.get(), &clock, &*schema, copts);

    EpochExecutorOptions options;
    options.num_threads = shape.threads;
    options.epoch_size = epoch_size;
    options.seed = 77;
    options.max_retries = shape.max_retries;
    options.sim = &sched;
    options.mutation_skip_dependency_edge = skip_edge;
    (void)RunWorkloadEpochs(cc, workload, shape.txns, options);
    if (sched.halted()) return "";
    return CheckSimHistory(cc, *db, /*replay_bounds=*/true);
  };
}

// Same harness over the baseline controllers (no bounds to replay).
template <typename Controller, typename ControllerOptions>
SimWorkloadFn BaselineWorkload(WorkloadShape shape,
                               ControllerOptions copts = {}) {
  return [shape, copts](SimScheduler& sched) -> std::string {
    SyntheticWorkload workload(shape.params);
    auto db = workload.MakeDatabase();
    SimClock clock(&sched);
    Controller cc(db.get(), &clock, copts);

    ExecutorOptions options;
    options.num_threads = shape.threads;
    options.seed = 77;
    options.max_retries = shape.max_retries;
    options.sim = &sched;
    (void)RunWorkload(cc, workload, shape.txns, options);
    if (sched.halted()) return "";
    return CheckSimHistory(cc, *db, /*replay_bounds=*/false);
  };
}

void ExpectSweepClean(const SeedSweepReport& report, const char* label) {
  EXPECT_GT(report.runs, 0u) << label;
  for (const SimFailure& failure : report.failures) {
    ADD_FAILURE() << label << ": seed " << failure.seed << " failed: "
                  << failure.message << "\n  replay"
                  << (failure.replayed_identically
                          ? " (reproduces byte-for-byte): "
                          : " (DID NOT reproduce!): ")
                  << failure.replay_command;
  }
}

// ---------------------------------------------------------------------------
// The acceptance sweep: thousands of seeded schedules of an HDD workload
// under fault injection; every completed history must pass the 1SR oracle.
TEST(SimExplore, HddSeedSweepPassesOracle) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  const std::uint64_t seeds = EnvOr("HDD_SIM_SEEDS", 2000);
  const SeedSweepReport report =
      RunSeedSweep(base, FirstSeed(), seeds, HddWorkload(HddShape()),
                   "ctest -R test_sim_explore");
  ExpectSweepClean(report, "hdd");
  EXPECT_EQ(report.runs, seeds);
  // The sweep is only evidence if faults actually fired.
  EXPECT_GT(report.faults_injected, 0u);
}

TEST(SimExplore, MvtoSeedSweepPassesOracle) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  WorkloadShape shape = HddShape();
  shape.params.read_only_fraction = 0.0;  // MVTO has no Protocol C
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), EnvOr("HDD_SIM_BASELINE_SEEDS", 300),
      BaselineWorkload<Mvto, MvtoOptions>(shape, {}),
      "ctest -R test_sim_explore");
  ExpectSweepClean(report, "mvto");
}

TEST(SimExplore, TwoPhaseSeedSweepPassesOracle) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  WorkloadShape shape = HddShape();
  shape.params.read_only_fraction = 0.0;
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), EnvOr("HDD_SIM_BASELINE_SEEDS", 300),
      BaselineWorkload<TwoPhaseLocking, TwoPhaseLockingOptions>(shape, {}),
      "ctest -R test_sim_explore");
  ExpectSweepClean(report, "2pl");
}

// ---------------------------------------------------------------------------
// Replay: the same options must reproduce the identical trace, choices and
// verdict; a different seed must schedule differently.
TEST(SimExplore, DeterministicReplay) {
  SimScheduler::Options options;
  options.faults = SweepFaults();
  options.seed = 42;
  const SimWorkloadFn fn = HddWorkload(HddShape());
  const SimRunReport a = RunSimulation(options, fn);
  const SimRunReport b = RunSimulation(options, fn);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.choices, b.choices);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  ASSERT_FALSE(a.trace.empty());

  options.seed = 43;
  const SimRunReport c = RunSimulation(options, fn);
  EXPECT_NE(a.trace, c.trace);
}

// ---------------------------------------------------------------------------
// Bounded systematic exploration: enumerate every schedule of a tiny
// two-worker workload that differs in the first branching decisions, with
// faults off — stateless model checking over the scheduler's choice tree.
TEST(SimExplore, BoundedSystematicExploration) {
  WorkloadShape shape = HddShape();
  shape.threads = 2;
  shape.txns = 4;
  SimScheduler::Options base;  // Explore* forces scripted mode, no faults
  const ExploreReport report = ExploreBoundedSchedules(
      base, /*branch_depth=*/7, /*max_schedules=*/800,
      HddWorkload(shape));
  for (const SimFailure& failure : report.failures) {
    ADD_FAILURE() << "schedule " << failure.seed << " failed: "
                  << failure.message << "\n  " << failure.replay_command;
  }
  EXPECT_GT(report.schedules, 1u);
  EXPECT_TRUE(report.exhausted || report.schedules == 800u)
      << "explorer stopped after " << report.schedules
      << " schedules without exhausting the bounded space";
}

// ---------------------------------------------------------------------------
// The canary: with Protocol A mutated to serve raw initiation times
// (violating Theorem 1), the sweep must catch a violation and the failing
// seed must replay byte-for-byte.
TEST(SimExplore, CanaryMutationIsCaught) {
  HddControllerOptions copts;
  copts.mutation_unsafe_protocol_a = true;

  WorkloadShape shape = HddShape();
  shape.params.depth = 2;               // one class above, one below
  shape.params.granules_per_segment = 2;  // maximize cross-segment conflict
  shape.params.read_only_fraction = 0.2;
  shape.txns = 12;

  SimScheduler::Options base;  // no faults: scheduling alone must expose it
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), EnvOr("HDD_SIM_CANARY_SEEDS", 300),
      HddWorkload(shape, copts), "ctest -R test_sim_explore");
  ASSERT_FALSE(report.failures.empty())
      << "the unsafe-Protocol-A mutation survived " << report.runs
      << " seeds — the harness cannot detect the injected violation";
  const SimFailure& first = report.failures.front();
  EXPECT_TRUE(first.replayed_identically)
      << "seed " << first.seed << " failed but did not replay";
  // The replayable repro is the artifact the harness promises.
  std::cout << "canary caught at seed " << first.seed << ": "
            << first.message << "\n  replay: " << first.replay_command
            << std::endl;
}

// ---------------------------------------------------------------------------
// Epoch/batch execution under the same model checker: the admission path
// (BeginEpoch/BeginBatch/EndEpoch), the per-epoch dependency graph, the
// shared bound cache and the retry-into-next-epoch loop all sit on
// scheduler-controlled yield points, so the sweep explores their
// interleavings with the full fault mix.
TEST(SimExplore, EpochSeedSweepPassesOracle) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  const std::uint64_t seeds = EnvOr("HDD_SIM_EPOCH_SEEDS", 2000);
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), seeds,
      HddEpochWorkload(HddShape(), /*epoch_size=*/4),
      "ctest -R test_sim_explore");
  ExpectSweepClean(report, "hdd-epoch");
  EXPECT_EQ(report.runs, seeds);
  EXPECT_GT(report.faults_injected, 0u);
}

// The epoch canary: drop one dependency edge per epoch. HDD's epoch mode
// delegates MVTO's younger-reader write check to exactly that graph, so
// two conflicting same-class transactions now race unordered and the
// sweep MUST catch the resulting non-1SR history with a replayable seed.
TEST(SimExplore, EpochCanaryMutationIsCaught) {
  WorkloadShape shape;
  shape.params.depth = 1;  // Protocol B only: the graph carries everything
  shape.params.granules_per_segment = 2;
  shape.params.own_reads = 2;
  shape.params.own_writes = 2;
  shape.params.upper_reads = 0;
  shape.params.read_only_fraction = 0.0;
  shape.txns = 12;

  SimScheduler::Options base;  // no faults: scheduling alone must expose it
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), EnvOr("HDD_SIM_EPOCH_CANARY_SEEDS", 300),
      HddEpochWorkload(shape, /*epoch_size=*/4, {}, /*skip_edge=*/true),
      "ctest -R test_sim_explore");
  ASSERT_FALSE(report.failures.empty())
      << "the skip-dependency-edge mutation survived " << report.runs
      << " seeds — the harness cannot detect an unordered epoch conflict";
  const SimFailure& first = report.failures.front();
  EXPECT_TRUE(first.replayed_identically)
      << "seed " << first.seed << " failed but did not replay";
  std::cout << "epoch canary caught at seed " << first.seed << ": "
            << first.message << "\n  replay: " << first.replay_command
            << std::endl;
}

// ---------------------------------------------------------------------------
// Crash-recovery model checking (src/wal/). The workload below runs HDD on
// top of a SimWalStorage with whole-process crashes armed at EVERY yield
// point (even non-interruptible ones — a power cut ignores critical
// sections). When the scheduler reports a process crash, the harness
//   1. crashes the simulated disk (synced bytes survive; a seeded-random
//      prefix of each file's unsynced tail survives, possibly tearing the
//      last record),
//   2. recovers into a FRESH database and checks the durability contract:
//      every commit acknowledged before the crash is recovered, and the
//      recovered chains are exactly the durable image of the pre-crash
//      chains (committed versions of durable transactions, nothing else),
//   3. restarts: reopens the WAL at the recovered ticket frontier,
//      restores control state, advances the clock past the recovered
//      floor, runs a second era of transactions,
//   4. checks the COMBINED pre-crash (durable slice) + post-recovery
//      history against the full 1SR oracle, bounds included.
// Runs that complete without a crash go through the same machinery (crash
// at quiescence: everything acked must survive). The canary flips
// WalOptions::mutation_skip_commit_sync — acks stop waiting for fsync —
// and the sweep MUST then catch a lost acked commit with a replayable
// seed.

struct CrashSweepCounters {
  std::atomic<std::uint64_t> process_crashes{0};
  std::atomic<std::uint64_t> recoveries{0};
};

// Compares the recovered chains against the durable image of the
// pre-crash chains; returns "" or the first mismatch.
std::string CompareDurableImage(const Database& before, const Database& after,
                                const std::set<TxnId>& durable) {
  for (int s = 0; s < before.num_segments(); ++s) {
    for (std::uint32_t g = 0; g < before.segment(s).size(); ++g) {
      std::vector<const Version*> want;
      for (const Version& v : before.segment(s).granule(g).versions()) {
        if (!v.committed) continue;
        if (v.creator != kInvalidTxn && durable.count(v.creator) == 0) {
          continue;
        }
        want.push_back(&v);
      }
      const auto& got = after.segment(s).granule(g).versions();
      const std::string where = "segment " + std::to_string(s) +
                                " granule " + std::to_string(g);
      if (got.size() != want.size()) {
        return "recovered chain size mismatch at " + where + ": got " +
               std::to_string(got.size()) + " want " +
               std::to_string(want.size());
      }
      for (std::size_t i = 0; i < want.size(); ++i) {
        if (got[i].order_key != want[i]->order_key ||
            got[i].wts != want[i]->wts || got[i].value != want[i]->value ||
            got[i].creator != want[i]->creator || !got[i].committed) {
          return "recovered version mismatch at " + where + " index " +
                 std::to_string(i) + " (order_key " +
                 std::to_string(got[i].order_key) + " vs " +
                 std::to_string(want[i]->order_key) + ")";
        }
      }
    }
  }
  return "";
}

// One simulated run with durability: crash (or quiesce), recover, restart,
// and check the combined history. `checkpoint_every` = 0 disables mid-run
// fuzzy checkpoints. `epoch_size` > 0 runs era 1 under the epoch/batch
// executor (era 2 always uses the plain per-txn path — recovery must not
// depend on how the pre-crash era was driven).
SimWorkloadFn WalCrashWorkload(WorkloadShape shape, WalOptions wopts,
                               std::uint64_t checkpoint_every,
                               CrashSweepCounters* counters,
                               std::uint64_t epoch_size = 0) {
  return [shape, wopts, checkpoint_every, counters,
          epoch_size](SimScheduler& sched) -> std::string {
    SyntheticWorkload workload(shape.params);
    auto schema = HierarchySchema::Create(workload.Spec());
    if (!schema.ok()) return schema.status().ToString();
    auto db = workload.MakeDatabase();
    SimWalStorage storage;
    auto wal = WalManager::Open(&storage, db->num_segments(), wopts);
    if (!wal.ok()) return wal.status().ToString();
    db->AttachWal(wal->get());
    SimClock clock(&sched);
    HddController cc(db.get(), &clock, &*schema);

    std::function<void(std::uint64_t)> on_txn_done;
    if (checkpoint_every > 0) {
      on_txn_done = [&cc, checkpoint_every](std::uint64_t done) {
        if (done % checkpoint_every == 0) (void)cc.CheckpointWal();
      };
    }
    if (epoch_size > 0) {
      EpochExecutorOptions options;
      options.num_threads = shape.threads;
      options.epoch_size = epoch_size;
      options.seed = 77;
      options.max_retries = shape.max_retries;
      options.sim = &sched;
      options.on_txn_done = on_txn_done;
      options.wal_metrics = &(*wal)->metrics();
      (void)RunWorkloadEpochs(cc, workload, shape.txns, options);
    } else {
      ExecutorOptions options;
      options.num_threads = shape.threads;
      options.seed = 77;
      options.max_retries = shape.max_retries;
      options.sim = &sched;
      options.on_txn_done = on_txn_done;
      options.wal_metrics = &(*wal)->metrics();
      (void)RunWorkload(cc, workload, shape.txns, options);
    }
    if (sched.halted() && !sched.process_crashed()) {
      return "";  // deadlock/budget findings are RunSimulation's to report
    }
    if (sched.process_crashed()) {
      counters->process_crashes.fetch_add(1, std::memory_order_relaxed);
    }

    // --- The machine dies (or, on clean completion, dies at quiescence).
    // All remaining nondeterminism must derive from the run's seed so
    // failing seeds replay byte-for-byte.
    Rng crash_rng(sched.seed() ^ 0xC0FFEEULL);
    storage.Crash(crash_rng);

    const auto pre_steps = cc.recorder().steps();
    const auto pre_outcomes = cc.recorder().outcomes();
    const auto pre_identities = cc.recorder().identities();

    auto db2 = workload.MakeDatabase();
    const auto report = RecoverDatabase(&storage, db2.get());
    if (!report.ok()) {
      return "recovery failed: " + report.status().ToString();
    }
    counters->recoveries.fetch_add(1, std::memory_order_relaxed);

    // --- Durability contract: every ACKED update commit is recovered.
    // (Commit() returns — and the executor records the outcome — only
    // after WaitDurable acked, so recorded-committed is a conservative
    // subset of acked.)
    std::unordered_set<TxnId> writers;
    for (const Step& s : pre_steps) {
      if (s.action == Step::Action::kWrite) writers.insert(s.txn);
    }
    for (const auto& [txn, state] : pre_outcomes) {
      if (state != TxnState::kCommitted) continue;
      if (writers.count(txn) == 0) continue;  // nothing to make durable
      if (report->durable_commits.count(txn) == 0) {
        return "acked commit lost across crash: txn " + std::to_string(txn);
      }
    }

    // --- State contract: the recovered chains are exactly the durable
    // image of the pre-crash chains.
    std::string mismatch =
        CompareDurableImage(*db, *db2, report->durable_commits);
    if (!mismatch.empty()) return mismatch;

    // --- Restart: second era on the recovered state. Plain clock and no
    // sim hooks — the scheduler has halted; a single worker keeps the
    // post-crash history deterministic.
    WalOptions wopts2 = wopts;
    wopts2.initial_ticket = report->frontier_ticket;
    wopts2.mutation_skip_commit_sync = false;
    auto wal2 = WalManager::Open(&storage, db2->num_segments(), wopts2);
    if (!wal2.ok()) return wal2.status().ToString();
    db2->AttachWal(wal2->get());
    LogicalClock clock2;
    clock2.AdvanceTo(report->max_timestamp);
    HddController cc2(db2.get(), &clock2, &*schema);
    const Status restored = cc2.RestoreControlState(report->control_state);
    if (!restored.ok()) {
      return "control-state restore failed: " + restored.ToString();
    }

    ExecutorOptions era2;
    era2.num_threads = 1;
    era2.seed = 177;
    era2.max_retries = shape.max_retries;
    (void)RunWorkload(cc2, workload, /*total_txns=*/6, era2);

    // --- Combined-history oracle: the durable slice of era 1 concatenated
    // with all of era 2 must be one-copy serializable against the final
    // chains, bounds included.
    std::unordered_set<TxnId> keep;
    for (const auto& [txn, state] : pre_outcomes) {
      if (state != TxnState::kCommitted) continue;
      const auto it = pre_identities.find(txn);
      const bool read_only = it != pre_identities.end() && it->second.read_only;
      // Acked read-only results are durable by the read barrier; update
      // transactions survive iff their commit record did.
      if (read_only || report->durable_commits.count(txn) > 0) {
        keep.insert(txn);
      }
    }
    // Recovery's verdict is authoritative: a crash can land after the
    // commit record reached disk but before the executor recorded the
    // outcome. Such a transaction IS committed — its versions survive in
    // db2 and era 2 may read them — so its steps must stay in the witness
    // even though pre_outcomes never saw kCommitted.
    for (const TxnId txn : report->durable_commits) keep.insert(txn);
    std::vector<Step> combined;
    std::uint64_t seq_base = 0;
    for (const Step& s : pre_steps) {
      if (keep.count(s.txn) == 0) continue;
      combined.push_back(s);
      if (s.seq >= seq_base) seq_base = s.seq + 1;
    }
    constexpr TxnId kEraOffset = 1ull << 32;
    for (const Step& s : cc2.recorder().steps()) {
      Step t = s;
      t.txn += kEraOffset;
      t.seq += seq_base;
      combined.push_back(t);
    }
    std::unordered_map<TxnId, TxnState> outcomes;
    std::unordered_map<TxnId, ScheduleRecorder::TxnIdentity> identities;
    for (const TxnId txn : keep) {
      outcomes[txn] = TxnState::kCommitted;
      const auto it = pre_identities.find(txn);
      if (it != pre_identities.end()) identities[txn] = it->second;
    }
    for (const auto& [txn, state] : cc2.recorder().outcomes()) {
      outcomes[txn + kEraOffset] = state;
    }
    for (const auto& [txn, identity] : cc2.recorder().identities()) {
      identities[txn + kEraOffset] = identity;
    }
    const std::string verdict = CheckRecordedHistory(
        combined, outcomes, identities, *db2, /*replay_bounds=*/true);
    if (!verdict.empty()) return "combined history: " + verdict;
    return "";
  };
}

// The durability acceptance sweep: thousands of seeded schedules with the
// full fault mix PLUS whole-process crashes; every crash goes through
// recovery, restart and the combined-history oracle.
TEST(SimExplore, WalCrashRecoverySweep) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  base.faults.process_crash_prob = 0.002;

  WalOptions wopts;
  wopts.group.mode = WalSyncMode::kGroupCommit;
  CrashSweepCounters counters;
  const std::uint64_t seeds = EnvOr("HDD_SIM_CRASH_SEEDS", 2000);
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), seeds,
      WalCrashWorkload(HddShape(), wopts, /*checkpoint_every=*/4, &counters),
      "ctest -R test_sim_explore");
  ExpectSweepClean(report, "wal-crash");
  EXPECT_EQ(report.runs, seeds);
  // The sweep is only evidence if crashes actually fired and were
  // recovered from.
  EXPECT_GT(counters.process_crashes.load(), 0u);
  EXPECT_GT(counters.recoveries.load(), 0u);
  std::cout << "wal crash sweep: " << counters.process_crashes.load()
            << " process crashes, " << counters.recoveries.load()
            << " recoveries over " << report.runs << " seeds" << std::endl;
}

// Era 1 under the epoch/batch executor: crashes now land inside batch
// admission, mid-graph and between epochs, and the durability contract
// plus the combined-history oracle must hold exactly as in per-txn mode.
TEST(SimExplore, WalEpochCrashRecoverySweep) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  base.faults.process_crash_prob = 0.004;

  WalOptions wopts;
  wopts.group.mode = WalSyncMode::kGroupCommit;
  CrashSweepCounters counters;
  const std::uint64_t seeds = EnvOr("HDD_SIM_EPOCH_CRASH_SEEDS", 500);
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), seeds,
      WalCrashWorkload(HddShape(), wopts, /*checkpoint_every=*/4, &counters,
                       /*epoch_size=*/4),
      "ctest -R test_sim_explore");
  ExpectSweepClean(report, "wal-epoch-crash");
  EXPECT_EQ(report.runs, seeds);
  EXPECT_GT(counters.process_crashes.load(), 0u);
  EXPECT_GT(counters.recoveries.load(), 0u);
  std::cout << "wal epoch crash sweep: " << counters.process_crashes.load()
            << " process crashes, " << counters.recoveries.load()
            << " recoveries over " << report.runs << " seeds" << std::endl;
}

// Per-commit fsync must satisfy the same contract (narrower loss window,
// different sync path).
TEST(SimExplore, WalCrashRecoverySweepPerCommit) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  base.faults.process_crash_prob = 0.004;

  WalOptions wopts;
  wopts.group.mode = WalSyncMode::kPerCommit;
  CrashSweepCounters counters;
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), EnvOr("HDD_SIM_CRASH_PERCOMMIT_SEEDS", 300),
      WalCrashWorkload(HddShape(), wopts, /*checkpoint_every=*/3, &counters),
      "ctest -R test_sim_explore");
  ExpectSweepClean(report, "wal-crash-percommit");
  EXPECT_GT(counters.recoveries.load(), 0u);
}

// The durability canary: commits acked WITHOUT waiting for fsync. A crash
// can then lose acknowledged commits, and the sweep must catch exactly
// that with a replayable seed — a harness that cannot see the mutation
// is broken.
TEST(SimExplore, WalCanaryLostAckIsCaught) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  base.faults.process_crash_prob = 0.02;  // crash early and often

  WalOptions wopts;
  wopts.group.mode = WalSyncMode::kGroupCommit;
  wopts.mutation_skip_commit_sync = true;
  CrashSweepCounters counters;
  // No mid-run checkpoints: their read barrier would sync the logs and
  // mask the mutation.
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), EnvOr("HDD_SIM_WAL_CANARY_SEEDS", 200),
      WalCrashWorkload(HddShape(), wopts, /*checkpoint_every=*/0, &counters),
      "ctest -R test_sim_explore");
  ASSERT_FALSE(report.failures.empty())
      << "the skip-commit-sync mutation survived " << report.runs
      << " seeds — the crash harness cannot detect lost acked commits";
  const SimFailure& first = report.failures.front();
  EXPECT_TRUE(first.replayed_identically)
      << "seed " << first.seed << " failed but did not replay";
  std::cout << "wal canary caught at seed " << first.seed << ": "
            << first.message << "\n  replay: " << first.replay_command
            << std::endl;
}

// ---------------------------------------------------------------------------
// Online re-decomposition under the model checker. A Redecomposer runs as
// the executor's service task: it drains the footprints the controller
// publishes, detects drift when an emergent cross-segment co-writer is
// declared mid-run, infers + validates a new decomposition and hot-swaps
// it via Restructure — all while workers keep committing and the fault
// injector fires. Every completed history must still pass the 1SR oracle,
// bounds included.

// The 3-segment chain the drift runs use: type0 writes `base`; type1
// writes `mid` reading `base`; type2 writes `top` reading both. The
// emergent pattern the re-decomposer must legalize co-writes base+mid.
PartitionSpec RedecompSpec() {
  PartitionSpec spec;
  spec.segment_names = {"base", "mid", "top"};
  spec.transaction_types = {
      {"t0", 0, {}},
      {"t1", 1, {0}},
      {"t2", 2, {0, 1}},
  };
  return spec;
}

constexpr std::uint32_t kRedecompGranules = 3;

// Chain workload that re-resolves its transaction class against the LIVE
// controller at Make time, so traffic keeps flowing across hot swaps, and
// that starts exercising the emergent base+mid co-write once the swap has
// landed (the classes merged). A Restructure racing the tiny window
// between Make and Begin/Write can still strand a stale class id; the
// resulting InvalidArgument/FailedPrecondition counts as a failed txn,
// which the controller's admission checks make harmless to 1SR.
class RedecompDriftWorkload : public Workload {
 public:
  explicit RedecompDriftWorkload(const HddController* cc) : cc_(cc) {}

  TxnProgram Make(std::uint64_t index, Rng& rng) const override {
    TxnProgram program;
    const std::uint32_t g =
        static_cast<std::uint32_t>(rng.NextBounded(kRedecompGranules));
    const Value value = static_cast<Value>(index + 1);
    const bool merged = cc_->ClassOfSegment(0) == cc_->ClassOfSegment(1);
    const double roll = rng.NextDouble();
    if (merged && roll < 0.35) {
      // The emergent pattern, now legal under the swapped-in structure.
      program.options.txn_class = cc_->ClassOfSegment(0);
      program.body = [g, value](ConcurrencyController& cc,
                                const TxnDescriptor& txn) -> Status {
        HDD_RETURN_IF_ERROR(cc.Write(txn, {0, g}, value));
        return cc.Write(txn, {1, g}, value);
      };
      return program;
    }
    if (roll < 0.2) {
      program.options.read_only = true;
      program.body = [g](ConcurrencyController& cc,
                         const TxnDescriptor& txn) -> Status {
        for (SegmentId s = 0; s < 3; ++s) {
          HDD_RETURN_IF_ERROR(cc.Read(txn, {s, g}).status());
        }
        return Status::OK();
      };
      return program;
    }
    const SegmentId root = static_cast<SegmentId>(rng.NextBounded(3));
    program.options.txn_class = cc_->ClassOfSegment(root);
    program.body = [root, g, value](ConcurrencyController& cc,
                                    const TxnDescriptor& txn) -> Status {
      for (SegmentId upper = 0; upper < root; ++upper) {
        HDD_RETURN_IF_ERROR(cc.Read(txn, {upper, g}).status());
      }
      return cc.Write(txn, {root, g}, value);
    };
    return program;
  }

 private:
  const HddController* cc_;
};

struct RedecompCounters {
  std::atomic<std::uint64_t> restructures{0};
  std::atomic<std::uint64_t> drift_events{0};
  std::atomic<std::uint64_t> busy_retries{0};
  std::atomic<std::uint64_t> canary_catches{0};
  std::atomic<std::uint64_t> canary_escapes{0};
};

void FoldRedecompStats(const RedecomposerStats& stats,
                       RedecompCounters* counters) {
  counters->restructures.fetch_add(stats.restructures,
                                   std::memory_order_relaxed);
  counters->drift_events.fetch_add(stats.drift_events,
                                   std::memory_order_relaxed);
  counters->busy_retries.fetch_add(stats.busy_retries,
                                   std::memory_order_relaxed);
  counters->canary_catches.fetch_add(stats.canary_catches,
                                     std::memory_order_relaxed);
  counters->canary_escapes.fetch_add(stats.canary_escapes,
                                     std::memory_order_relaxed);
}

// One simulated drift run: workers commit chain traffic while the
// Redecomposer service polls; halfway through, an emergent base+mid
// co-writer is declared often enough to cross the drift bar, and the
// service must infer, validate and Restructure with traffic still live.
// `epoch_size` > 0 drives the run through the epoch/batch executor so
// pending swaps hit the BeginEpoch/Restructure exclusion (Busy) first.
SimWorkloadFn RedecompDriftRun(std::uint64_t txns, RedecomposerOptions ropts,
                               RedecompCounters* counters,
                               std::uint64_t epoch_size = 0) {
  return [txns, ropts, counters, epoch_size](
             SimScheduler& sched) -> std::string {
    auto schema = HierarchySchema::Create(RedecompSpec());
    if (!schema.ok()) return schema.status().ToString();
    Database db(3, kRedecompGranules);
    SimClock clock(&sched);
    FootprintRecorder recorder;
    HddControllerOptions copts;
    copts.footprint = &recorder;
    HddController cc(&db, &clock, &*schema, copts);
    Redecomposer redecomposer(&cc, &recorder, &db, ropts);
    RedecompDriftWorkload workload(&cc);

    const std::uint64_t declare_at = txns / 2;
    auto on_txn_done = [&recorder, declare_at,
                        &ropts](std::uint64_t done) {
      if (done != declare_at) return;
      // Declared emergent intent: announced at admission time, cannot yet
      // execute. Enough copies to dominate a drift window.
      for (std::uint64_t i = 0; i < 2 * ropts.window_txns; ++i) {
        recorder.Declare(
            {FootprintRecorder::Pack(0, 0), FootprintRecorder::Pack(1, 0)},
            /*reads=*/{});
      }
    };

    if (epoch_size > 0) {
      EpochExecutorOptions options;
      options.num_threads = 3;
      options.epoch_size = epoch_size;
      options.seed = 77;
      options.max_retries = 50;
      options.sim = &sched;
      options.on_txn_done = on_txn_done;
      options.service = redecomposer.AsService();
      (void)RunWorkloadEpochs(cc, workload, txns, options);
    } else {
      ExecutorOptions options;
      options.num_threads = 3;
      options.seed = 77;
      options.max_retries = 50;
      options.sim = &sched;
      options.on_txn_done = on_txn_done;
      options.service = redecomposer.AsService();
      (void)RunWorkload(cc, workload, txns, options);
    }
    if (sched.halted()) return "";
    FoldRedecompStats(redecomposer.stats(), counters);
    if (redecomposer.stats().canary_escapes > 0) {
      return "mutation canary escaped validation";
    }
    if (!redecomposer.last_error().ok()) {
      return "redecomposer error: " +
             redecomposer.last_error().ToString();
    }
    return CheckSimHistory(cc, db, /*replay_bounds=*/true);
  };
}

// The drift acceptance sweep: hundreds of seeded schedules, each with a
// mid-run drift-driven hot swap under the full fault mix.
TEST(SimExplore, RedecompDriftSweepPassesOracle) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  RedecomposerOptions ropts;
  ropts.window_txns = 6;
  ropts.drift_threshold = 0.3;
  RedecompCounters counters;
  const std::uint64_t seeds = EnvOr("HDD_SIM_REDECOMP_SEEDS", 500);
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), seeds, RedecompDriftRun(14, ropts, &counters),
      "ctest -R test_sim_explore");
  ExpectSweepClean(report, "redecomp-drift");
  EXPECT_EQ(report.runs, seeds);
  // The sweep is only evidence if swaps actually happened under load.
  EXPECT_GT(counters.drift_events.load(), 0u);
  EXPECT_GT(counters.restructures.load(), 0u);
  std::cout << "redecomp drift sweep: " << counters.drift_events.load()
            << " drift events, " << counters.restructures.load()
            << " restructures over " << report.runs << " seeds"
            << std::endl;
}

// Same drift runs through the epoch/batch executor: a swap that becomes
// pending while an epoch is open must be refused with Busy (the PR 5
// BeginEpoch/Restructure exclusion) and land between epochs instead.
TEST(SimExplore, RedecompEpochSweepPassesOracle) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  RedecomposerOptions ropts;
  ropts.window_txns = 6;
  ropts.drift_threshold = 0.3;
  RedecompCounters counters;
  const std::uint64_t seeds = EnvOr("HDD_SIM_REDECOMP_EPOCH_SEEDS", 300);
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), seeds,
      RedecompDriftRun(14, ropts, &counters, /*epoch_size=*/4),
      "ctest -R test_sim_explore");
  ExpectSweepClean(report, "redecomp-epoch");
  EXPECT_EQ(report.runs, seeds);
  EXPECT_GT(counters.restructures.load(), 0u);
  // The exclusion must actually have been exercised somewhere in the
  // sweep: a swap arriving mid-epoch is turned away with Busy.
  EXPECT_GT(counters.busy_retries.load(), 0u)
      << "no Restructure ever collided with an open epoch — the sweep "
         "did not exercise the exclusion";
  std::cout << "redecomp epoch sweep: " << counters.restructures.load()
            << " restructures, " << counters.busy_retries.load()
            << " busy retries over " << report.runs << " seeds"
            << std::endl;
}

// The re-decomposition canary: every inference deliberately mis-classifies
// one granule. The validation pass guarding the hot swap must catch every
// single one (an escape fails the run), and the swap still proceeds from
// a clean re-inference — proving the safety net, not just the happy path.
TEST(SimExplore, RedecompCanaryMutationIsCaught) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  RedecomposerOptions ropts;
  ropts.window_txns = 6;
  ropts.drift_threshold = 0.3;
  ropts.infer.mutation_misclassify_granule = true;
  RedecompCounters counters;
  const std::uint64_t seeds = EnvOr("HDD_SIM_REDECOMP_CANARY_SEEDS", 200);
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), seeds, RedecompDriftRun(14, ropts, &counters),
      "ctest -R test_sim_explore");
  ExpectSweepClean(report, "redecomp-canary");
  EXPECT_GT(counters.canary_catches.load(), 0u)
      << "the mis-classification canary never fired — the sweep proves "
         "nothing about the validation net";
  EXPECT_EQ(counters.canary_escapes.load(), 0u);
  std::cout << "redecomp canary: " << counters.canary_catches.load()
            << " catches, 0 escapes over " << report.runs << " seeds"
            << std::endl;
}

// Drift + durability: the same drift runs on a WAL with whole-process
// crashes armed. After a crash the harness recovers into a fresh
// database, REPLAYS the completed merges (applied_merges, in order) onto
// the fresh controller — Restructure is deterministic, so the rebuilt
// class structure matches — and runs a second era; the combined durable
// history must pass the full oracle. No mid-run checkpoints: control
// state snapshots are tied to the class structure they were taken under,
// and this sweep changes the structure mid-run.
TEST(SimExplore, RedecompCrashRecoverySweep) {
  SimScheduler::Options base;
  base.faults = SweepFaults();
  base.faults.process_crash_prob = 0.004;

  RedecomposerOptions ropts;
  ropts.window_txns = 6;
  ropts.drift_threshold = 0.3;
  RedecompCounters counters;
  CrashSweepCounters crash_counters;

  auto run = [&](SimScheduler& sched) -> std::string {
    auto schema = HierarchySchema::Create(RedecompSpec());
    if (!schema.ok()) return schema.status().ToString();
    Database db(3, kRedecompGranules);
    SimWalStorage storage;
    WalOptions wopts;
    wopts.group.mode = WalSyncMode::kGroupCommit;
    auto wal = WalManager::Open(&storage, db.num_segments(), wopts);
    if (!wal.ok()) return wal.status().ToString();
    db.AttachWal(wal->get());
    SimClock clock(&sched);
    FootprintRecorder recorder;
    HddControllerOptions copts;
    copts.footprint = &recorder;
    HddController cc(&db, &clock, &*schema, copts);
    Redecomposer redecomposer(&cc, &recorder, &db, ropts);
    RedecompDriftWorkload workload(&cc);

    const std::uint64_t txns = 14;
    auto on_txn_done = [&recorder, &ropts](std::uint64_t done) {
      if (done != 7) return;
      for (std::uint64_t i = 0; i < 2 * ropts.window_txns; ++i) {
        recorder.Declare(
            {FootprintRecorder::Pack(0, 0), FootprintRecorder::Pack(1, 0)},
            /*reads=*/{});
      }
    };
    ExecutorOptions options;
    options.num_threads = 3;
    options.seed = 77;
    options.max_retries = 50;
    options.sim = &sched;
    options.on_txn_done = on_txn_done;
    options.service = redecomposer.AsService();
    options.wal_metrics = &(*wal)->metrics();
    (void)RunWorkload(cc, workload, txns, options);
    if (sched.halted() && !sched.process_crashed()) return "";
    if (sched.process_crashed()) {
      crash_counters.process_crashes.fetch_add(1, std::memory_order_relaxed);
    }
    FoldRedecompStats(redecomposer.stats(), &counters);
    if (!redecomposer.last_error().ok()) {
      return "redecomposer error: " + redecomposer.last_error().ToString();
    }

    Rng crash_rng(sched.seed() ^ 0xC0FFEEULL);
    storage.Crash(crash_rng);

    const auto pre_steps = cc.recorder().steps();
    const auto pre_outcomes = cc.recorder().outcomes();
    const auto pre_identities = cc.recorder().identities();

    Database db2(3, kRedecompGranules);
    const auto report = RecoverDatabase(&storage, &db2);
    if (!report.ok()) {
      return "recovery failed: " + report.status().ToString();
    }
    crash_counters.recoveries.fetch_add(1, std::memory_order_relaxed);

    std::unordered_set<TxnId> writers;
    for (const Step& s : pre_steps) {
      if (s.action == Step::Action::kWrite) writers.insert(s.txn);
    }
    for (const auto& [txn, state] : pre_outcomes) {
      if (state != TxnState::kCommitted) continue;
      if (writers.count(txn) == 0) continue;
      if (report->durable_commits.count(txn) == 0) {
        return "acked commit lost across crash: txn " + std::to_string(txn);
      }
    }
    std::string mismatch =
        CompareDurableImage(db, db2, report->durable_commits);
    if (!mismatch.empty()) return mismatch;

    // Restart, replaying the completed merges before the second era so
    // the class structure the survivors committed under is rebuilt.
    WalOptions wopts2 = wopts;
    wopts2.initial_ticket = report->frontier_ticket;
    auto wal2 = WalManager::Open(&storage, db2.num_segments(), wopts2);
    if (!wal2.ok()) return wal2.status().ToString();
    db2.AttachWal(wal2->get());
    LogicalClock clock2;
    clock2.AdvanceTo(report->max_timestamp);
    HddController cc2(&db2, &clock2, &*schema);
    const Status restored = cc2.RestoreControlState(report->control_state);
    if (!restored.ok()) {
      return "control-state restore failed: " + restored.ToString();
    }
    for (const AppliedMerge& merge : redecomposer.applied_merges()) {
      auto merged = cc2.Restructure(merge.write_segments,
                                    merge.read_segments);
      if (!merged.ok()) {
        return "merge replay failed: " + merged.status().ToString();
      }
    }

    RedecompDriftWorkload workload2(&cc2);
    ExecutorOptions era2;
    era2.num_threads = 1;
    era2.seed = 177;
    era2.max_retries = 50;
    (void)RunWorkload(cc2, workload2, /*total_txns=*/6, era2);

    std::unordered_set<TxnId> keep;
    for (const auto& [txn, state] : pre_outcomes) {
      if (state != TxnState::kCommitted) continue;
      const auto it = pre_identities.find(txn);
      const bool read_only =
          it != pre_identities.end() && it->second.read_only;
      if (read_only || report->durable_commits.count(txn) > 0) {
        keep.insert(txn);
      }
    }
    for (const TxnId txn : report->durable_commits) keep.insert(txn);
    std::vector<Step> combined;
    std::uint64_t seq_base = 0;
    for (const Step& s : pre_steps) {
      if (keep.count(s.txn) == 0) continue;
      combined.push_back(s);
      if (s.seq >= seq_base) seq_base = s.seq + 1;
    }
    constexpr TxnId kEraOffset = 1ull << 32;
    for (const Step& s : cc2.recorder().steps()) {
      Step t = s;
      t.txn += kEraOffset;
      t.seq += seq_base;
      combined.push_back(t);
    }
    std::unordered_map<TxnId, TxnState> outcomes;
    std::unordered_map<TxnId, ScheduleRecorder::TxnIdentity> identities;
    for (const TxnId txn : keep) {
      outcomes[txn] = TxnState::kCommitted;
      const auto it = pre_identities.find(txn);
      if (it != pre_identities.end()) identities[txn] = it->second;
    }
    for (const auto& [txn, state] : cc2.recorder().outcomes()) {
      outcomes[txn + kEraOffset] = state;
    }
    for (const auto& [txn, identity] : cc2.recorder().identities()) {
      identities[txn + kEraOffset] = identity;
    }
    const std::string verdict = CheckRecordedHistory(
        combined, outcomes, identities, db2, /*replay_bounds=*/true);
    if (!verdict.empty()) return "combined history: " + verdict;
    return "";
  };

  const std::uint64_t seeds = EnvOr("HDD_SIM_REDECOMP_CRASH_SEEDS", 300);
  const SeedSweepReport report = RunSeedSweep(
      base, FirstSeed(), seeds, run, "ctest -R test_sim_explore");
  ExpectSweepClean(report, "redecomp-crash");
  EXPECT_EQ(report.runs, seeds);
  EXPECT_GT(crash_counters.process_crashes.load(), 0u);
  EXPECT_GT(crash_counters.recoveries.load(), 0u);
  EXPECT_GT(counters.restructures.load(), 0u);
  std::cout << "redecomp crash sweep: "
            << crash_counters.process_crashes.load() << " crashes, "
            << crash_counters.recoveries.load() << " recoveries, "
            << counters.restructures.load() << " restructures over "
            << report.runs << " seeds" << std::endl;
}

// ---------------------------------------------------------------------------
// Scheduler-level unit test: two tasks block on channels nobody notifies;
// the scheduler must declare the run deadlocked and unwind both tasks with
// SimHalt rather than hang.
TEST(SimExplore, SchedulerDetectsDeadlock) {
  SimScheduler::Options options;
  SimScheduler sched(options);
  sched.ExpectTasks(2);

  auto starve = [&sched](int id, const void* channel) {
    std::mutex mu;
    try {
      sched.RegisterCurrentTask(id);
      std::unique_lock<std::mutex> lock(mu);
      for (;;) sched.BlockOn(channel, lock);
    } catch (const SimHalt&) {
    }
    sched.UnregisterCurrentTask();
  };
  const int ch_a = 0, ch_b = 0;
  std::thread a(starve, 0, &ch_a);
  std::thread b(starve, 1, &ch_b);
  a.join();
  b.join();

  EXPECT_TRUE(sched.halted());
  EXPECT_TRUE(sched.deadlocked());
  EXPECT_FALSE(sched.decision_limit_hit());
  EXPECT_NE(sched.halt_reason().find("deadlock"), std::string::npos)
      << sched.halt_reason();
}

// A busy-looping task must be stopped by the decision budget, reported as
// a suspected livelock rather than a deadlock.
TEST(SimExplore, DecisionBudgetBackstopsLivelock) {
  SimScheduler::Options options;
  options.max_decisions = 64;
  SimScheduler sched(options);
  sched.ExpectTasks(1);
  std::thread t([&sched] {
    try {
      sched.RegisterCurrentTask(0);
      for (;;) sched.Yield("test/spin", /*interruptible=*/true);
    } catch (const SimHalt&) {
    }
    sched.UnregisterCurrentTask();
  });
  t.join();
  EXPECT_TRUE(sched.halted());
  EXPECT_TRUE(sched.decision_limit_hit());
  EXPECT_FALSE(sched.deadlocked());
}

}  // namespace
}  // namespace hdd
