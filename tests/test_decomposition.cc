#include "graph/decomposition.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/algorithms.h"
#include "graph/semi_tree.h"

namespace hdd {
namespace {

TEST(MergePlanTest, LegalGraphUntouched) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  MergePlan plan = MakeTstMergePlan(g);
  EXPECT_EQ(plan.merges, 0);
  EXPECT_EQ(plan.num_groups, 3);
}

TEST(MergePlanTest, DiamondMergedOnce) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.AddArc(1, 3);
  g.AddArc(2, 3);
  MergePlan plan = MakeTstMergePlan(g);
  EXPECT_EQ(plan.merges, 1);
  EXPECT_EQ(plan.num_groups, 3);
  Digraph q = Quotient(g, plan.labels, plan.num_groups);
  EXPECT_TRUE(IsTransitiveSemiTree(q));
}

TEST(MergePlanTest, DirectedCycleCondensed) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 0);
  g.AddArc(1, 2);
  MergePlan plan = MakeTstMergePlan(g);
  EXPECT_EQ(plan.num_groups, 2);
  EXPECT_EQ(plan.labels[0], plan.labels[1]);
  Digraph q = Quotient(g, plan.labels, plan.num_groups);
  EXPECT_TRUE(IsTransitiveSemiTree(q));
}

TEST(MergePlanTest, RandomDagsBecomeLegal) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.NextInRange(2, 12));
    Digraph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.NextBool(0.35)) g.AddArc(u, v);
      }
    }
    MergePlan plan = MakeTstMergePlan(g);
    Digraph q = Quotient(g, plan.labels, plan.num_groups);
    EXPECT_TRUE(IsTransitiveSemiTree(q))
        << "trial " << trial << " produced an illegal quotient";
    EXPECT_GE(plan.num_groups, 1);
    EXPECT_LE(plan.num_groups, n);
  }
}

TEST(MergePlanTest, RandomCyclicGraphsBecomeLegal) {
  Rng rng(202);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.NextInRange(2, 10));
    Digraph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u != v && rng.NextBool(0.25)) g.AddArc(u, v);
      }
    }
    MergePlan plan = MakeTstMergePlan(g);
    Digraph q = Quotient(g, plan.labels, plan.num_groups);
    EXPECT_TRUE(IsTransitiveSemiTree(q)) << "trial " << trial;
  }
}

TEST(DecomposeTest, InventoryGranules) {
  // Granules 0-2: event records; 3-4: inventory; 5: orders.
  std::vector<AccessFootprint> types = {
      {{0, 1, 2}, {}},        // log events
      {{3, 4}, {0, 1, 2}},    // post inventory
      {{5}, {0, 3, 4}},       // reorder
  };
  auto dec = DecomposeFromAccessSets(6, types);
  ASSERT_TRUE(dec.ok()) << dec.status();
  EXPECT_EQ(dec->num_segments, 3);
  EXPECT_EQ(dec->merges, 0);
  // Co-written granules share a segment.
  EXPECT_EQ(dec->granule_segment[0], dec->granule_segment[1]);
  EXPECT_EQ(dec->granule_segment[3], dec->granule_segment[4]);
  EXPECT_NE(dec->granule_segment[0], dec->granule_segment[3]);
  EXPECT_TRUE(IsTransitiveSemiTree(dec->dhg));
}

TEST(DecomposeTest, DiamondFootprintsForceMerge) {
  // Two derived segments from the same base, one consumer of both.
  std::vector<AccessFootprint> types = {
      {{0}, {}},
      {{1}, {0}},
      {{2}, {0}},
      {{3}, {1, 2}},
  };
  auto dec = DecomposeFromAccessSets(4, types);
  ASSERT_TRUE(dec.ok());
  EXPECT_GE(dec->merges, 1);
  EXPECT_LT(dec->num_segments, 4);
  EXPECT_TRUE(IsTransitiveSemiTree(dec->dhg));
}

TEST(DecomposeTest, OutOfRangeGranuleRejected) {
  std::vector<AccessFootprint> types = {{{9}, {}}};
  EXPECT_FALSE(DecomposeFromAccessSets(4, types).ok());
  types = {{{0}, {9}}};
  EXPECT_FALSE(DecomposeFromAccessSets(4, types).ok());
}

TEST(DecomposeTest, ReadOnlyTypeContributesNoArcs) {
  std::vector<AccessFootprint> types = {
      {{0}, {}},
      {{}, {0, 1}},  // a pure reader (handled by Protocol C at runtime)
      {{1}, {0}},
  };
  auto dec = DecomposeFromAccessSets(2, types);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->num_segments, 2);
  EXPECT_TRUE(dec->dhg.HasArc(dec->granule_segment[1],
                              dec->granule_segment[0]));
}

TEST(DecomposeTest, RandomFootprintsAlwaysLegal) {
  Rng rng(303);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint32_t granules = 12;
    const int num_types = static_cast<int>(rng.NextInRange(1, 6));
    std::vector<AccessFootprint> types(num_types);
    for (auto& type : types) {
      const int writes = static_cast<int>(rng.NextInRange(1, 3));
      for (int i = 0; i < writes; ++i) {
        type.write_granules.push_back(
            static_cast<std::uint32_t>(rng.NextBounded(granules)));
      }
      const int reads = static_cast<int>(rng.NextInRange(0, 4));
      for (int i = 0; i < reads; ++i) {
        type.read_granules.push_back(
            static_cast<std::uint32_t>(rng.NextBounded(granules)));
      }
    }
    auto dec = DecomposeFromAccessSets(granules, types);
    ASSERT_TRUE(dec.ok());
    EXPECT_TRUE(IsTransitiveSemiTree(dec->dhg)) << "trial " << trial;
    for (int seg : dec->granule_segment) {
      EXPECT_GE(seg, 0);
      EXPECT_LT(seg, dec->num_segments);
    }
  }
}

}  // namespace
}  // namespace hdd
