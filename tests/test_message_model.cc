#include "engine/message_model.h"

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"

namespace hdd {
namespace {

TEST(MessageModelTest, LocalAccessesAreFree) {
  ScheduleRecorder recorder;
  recorder.RecordBegin(1, /*txn_class=*/0, /*read_only=*/false);
  recorder.RecordRead(1, {0, 0}, 0, /*registered=*/true);
  recorder.RecordWrite(1, {0, 0}, 1);
  recorder.RecordOutcome(1, TxnState::kCommitted);
  CcMetrics metrics;
  metrics.commits = 1;
  auto stats = ComputeMessageStats(recorder.steps(), recorder.identities(),
                                   metrics);
  EXPECT_EQ(stats.local_accesses, 2u);
  EXPECT_EQ(stats.remote_accesses, 0u);
  EXPECT_EQ(stats.total_messages, 0u);
}

TEST(MessageModelTest, RemoteRegisteredReadCostsThree) {
  ScheduleRecorder recorder;
  recorder.RecordBegin(1, /*txn_class=*/1, /*read_only=*/false);
  recorder.RecordRead(1, {0, 0}, 0, /*registered=*/true);  // cross segment
  recorder.RecordOutcome(1, TxnState::kCommitted);
  CcMetrics metrics;
  metrics.commits = 1;
  auto stats = ComputeMessageStats(recorder.steps(), recorder.identities(),
                                   metrics);
  EXPECT_EQ(stats.remote_accesses, 1u);
  EXPECT_EQ(stats.transfer_messages, 2u);
  EXPECT_EQ(stats.registration_messages, 1u);
  EXPECT_EQ(stats.total_messages, 3u);
  EXPECT_DOUBLE_EQ(stats.per_commit, 3.0);
}

TEST(MessageModelTest, RemoteUnregisteredReadCostsTwo) {
  ScheduleRecorder recorder;
  recorder.RecordBegin(1, 1, false);
  recorder.RecordRead(1, {0, 0}, 0, /*registered=*/false);
  recorder.RecordOutcome(1, TxnState::kCommitted);
  CcMetrics metrics;
  metrics.commits = 1;
  auto stats = ComputeMessageStats(recorder.steps(), recorder.identities(),
                                   metrics);
  EXPECT_EQ(stats.registration_messages, 0u);
  EXPECT_EQ(stats.total_messages, 2u);
}

TEST(MessageModelTest, ReadOnlyTxnsAreAlwaysRemote) {
  ScheduleRecorder recorder;
  recorder.RecordBegin(1, kReadOnlyClass, true);
  recorder.RecordRead(1, {0, 0}, 0);
  recorder.RecordRead(1, {1, 0}, 0);
  recorder.RecordOutcome(1, TxnState::kCommitted);
  CcMetrics metrics;
  metrics.commits = 1;
  auto stats = ComputeMessageStats(recorder.steps(), recorder.identities(),
                                   metrics);
  EXPECT_EQ(stats.remote_accesses, 2u);
}

TEST(MessageModelTest, BlockingEpisodesCounted) {
  ScheduleRecorder recorder;
  CcMetrics metrics;
  metrics.commits = 1;
  metrics.blocked_reads = 3;
  metrics.blocked_writes = 1;
  auto stats = ComputeMessageStats(recorder.steps(), recorder.identities(),
                                   metrics);
  EXPECT_EQ(stats.blocking_messages, 8u);
}

TEST(MessageModelTest, HddRegistersNoRemoteReadEndToEnd) {
  InventoryWorkloadParams params;
  params.items = 4;
  InventoryWorkload workload(params);
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  ExecutorOptions options;
  options.num_threads = 3;

  auto run = [&](ControllerKind kind) {
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    auto cc = CreateController(kind, db.get(), &clock, &*schema);
    (void)RunWorkload(*cc, workload, 200, options);
    return ComputeMessageStats(cc->recorder().steps(),
                               cc->recorder().identities(), cc->metrics());
  };
  auto hdd = run(ControllerKind::kHdd);
  auto to = run(ControllerKind::kTimestampOrdering);
  EXPECT_EQ(hdd.registration_messages, 0u);
  EXPECT_GT(to.registration_messages, 0u);
  EXPECT_GT(hdd.remote_accesses, 0u);
  EXPECT_LT(hdd.total_messages, to.total_messages);
}

}  // namespace
}  // namespace hdd
