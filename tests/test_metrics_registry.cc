// Tests for the unified metrics registry (src/obs/metrics_registry.h):
// striped counters under concurrency, histogram bucketing math, quantiles
// of merged snapshots against a sorted-vector reference, and the flat
// Snapshot() map the run reports consume.

#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

namespace hdd {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.load(), 7u);
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, AddSubSetAndClamp) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0u);
  g.Add(5);
  g.Sub(2);
  EXPECT_EQ(g.Value(), 3u);
  g.Set(10);
  EXPECT_EQ(g.Value(), 10u);
  // A transiently negative merged sum reads as zero, never wraps.
  g.Set(0);
  g.Sub(4);
  EXPECT_EQ(g.Value(), 0u);
  g.Add(6);
  EXPECT_EQ(g.Value(), 2u);
}

TEST(GaugeTest, ConcurrentUpDownIsExact) {
  // Paired Add/Sub across threads: the level must return to the number
  // of unmatched Adds even though increments and decrements land on
  // different stripes.
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) {
        g.Add();
        g.Sub();
      }
      g.Add();  // one unmatched increment per thread
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.Value(), static_cast<std::uint64_t>(kThreads));
}

TEST(HistogramTest, BucketIndexMonotoneAndBoundsConsistent) {
  std::size_t prev = 0;
  for (std::uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 31ull, 32ull,
                          100ull, 1000ull, 65535ull, 65536ull,
                          1ull << 40, ~0ull}) {
    const std::size_t idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev) << "index not monotone at " << v;
    prev = idx;
    // The value must not exceed its bucket's upper bound, and must lie
    // above the previous bucket's.
    EXPECT_LE(v, Histogram::BucketUpperBound(idx));
    if (idx > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(idx - 1));
    }
  }
}

TEST(HistogramTest, QuantileRelativeErrorBound) {
  // The log-linear layout (16 sub-buckets per octave) promises any
  // quantile within 1/16 relative error. Check against the exact value
  // from a sorted copy, across distributions that stress different
  // octaves.
  std::mt19937_64 rng(12345);
  std::vector<std::vector<std::uint64_t>> datasets;
  {
    std::uniform_int_distribution<std::uint64_t> uniform(0, 1000);
    std::vector<std::uint64_t> v(5000);
    for (auto& x : v) x = uniform(rng);
    datasets.push_back(std::move(v));
  }
  {
    // Heavy-tailed: exercises high octaves the way latency spikes do.
    std::exponential_distribution<double> exp_dist(1.0 / 5000.0);
    std::vector<std::uint64_t> v(5000);
    for (auto& x : v) x = static_cast<std::uint64_t>(exp_dist(rng));
    datasets.push_back(std::move(v));
  }
  for (const std::vector<std::uint64_t>& data : datasets) {
    Histogram h;
    for (std::uint64_t v : data) h.Record(v);
    std::vector<std::uint64_t> sorted = data;
    std::sort(sorted.begin(), sorted.end());
    const Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.count, data.size());
    EXPECT_EQ(snap.max, sorted.back());
    for (double q : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0}) {
      const std::uint64_t exact =
          sorted[std::min(sorted.size() - 1,
                          static_cast<std::size_t>(q * sorted.size()))];
      const std::uint64_t approx = snap.ValueAtQuantile(q);
      // The reported bound is the bucket's upper edge: never below the
      // exact value's bucket, and within one sub-bucket width above.
      EXPECT_GE(approx, exact) << "q=" << q;
      EXPECT_LE(approx, exact + exact / Histogram::kSubBuckets + 1)
          << "q=" << q;
    }
  }
}

TEST(HistogramTest, MergeMatchesRecordingIntoOne) {
  // Merging shard snapshots must equal having recorded everything into a
  // single histogram — the property cross-shard aggregation relies on.
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::uint64_t> dist(0, 1u << 20);
  Histogram shard_a;
  Histogram shard_b;
  Histogram combined;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t v = dist(rng);
    (i % 2 == 0 ? shard_a : shard_b).Record(v);
    combined.Record(v);
  }
  Histogram::Snapshot merged = shard_a.snapshot();
  merged.Merge(shard_b.snapshot());
  const Histogram::Snapshot reference = combined.snapshot();
  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.sum, reference.sum);
  EXPECT_EQ(merged.max, reference.max);
  EXPECT_EQ(merged.buckets, reference.buckets);
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(merged.ValueAtQuantile(q), reference.ValueAtQuantile(q));
  }
}

TEST(HistogramTest, ConcurrentRecordsLoseNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SameNameSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("commits");
  Counter& b = registry.GetCounter("commits");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(registry.SnapshotCounters().at("commits"), 3u);
  Histogram& h1 = registry.GetHistogram("latency_us");
  Histogram& h2 = registry.GetHistogram("latency_us");
  EXPECT_EQ(&h1, &h2);
  Gauge& g1 = registry.GetGauge("connections");
  Gauge& g2 = registry.GetGauge("connections");
  EXPECT_EQ(&g1, &g2);
  g1.Add(2);
  EXPECT_EQ(registry.SnapshotGauges().at("connections"), 2u);
  EXPECT_EQ(registry.Snapshot().at("connections"), 2u);
}

TEST(MetricsRegistryTest, SnapshotFlattensHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("aborts").Add(5);
  Histogram& h = registry.GetHistogram("latency_us");
  for (std::uint64_t v = 1; v <= 100; ++v) h.Record(v);
  const auto snap = registry.Snapshot();
  EXPECT_EQ(snap.at("aborts"), 5u);
  EXPECT_EQ(snap.at("latency_us_count"), 100u);
  EXPECT_GE(snap.at("latency_us_p50"), 50u);
  EXPECT_GE(snap.at("latency_us_p95"), 95u);
  EXPECT_GE(snap.at("latency_us_max"), 100u);
}

TEST(MetricsRegistryTest, ResetZeroesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(9);
  registry.GetGauge("g").Add(4);
  registry.GetHistogram("h").Record(42);
  registry.Reset();
  EXPECT_EQ(registry.SnapshotCounters().at("c"), 0u);
  EXPECT_EQ(registry.SnapshotGauges().at("g"), 0u);
  EXPECT_EQ(registry.GetHistogram("h").Count(), 0u);
}

}  // namespace
}  // namespace hdd
