// Unit tests of the WAL's on-disk layer (src/wal/): CRC framing, record
// encoding, the SimWalStorage crash model, segment logs, group commit,
// fuzzy checkpoints and crash recovery over hand-built databases. The
// end-to-end controller-level recovery tests live in test_wal_recovery.cc;
// the model-checked crash sweeps in test_sim_explore.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "storage/database.h"
#include "wal/checkpoint.h"
#include "wal/log_format.h"
#include "wal/recovery.h"
#include "wal/segment_log.h"
#include "wal/wal_manager.h"
#include "wal/wal_storage.h"

namespace hdd {
namespace {

// ---------------------------------------------------------------------------
// Framing.

TEST(WalFormat, Crc32KnownVector) {
  // The IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(WalFormat, ScanEmptyLog) {
  const auto scan = ScanFrames("");
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->frames.empty());
  EXPECT_EQ(scan->valid_end, 0u);
  EXPECT_FALSE(scan->torn_tail);
}

TEST(WalFormat, ScanRoundTrip) {
  std::string log;
  AppendFrame(&log, "alpha");
  AppendFrame(&log, "beta");
  const auto scan = ScanFrames(log);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->frames.size(), 2u);
  EXPECT_EQ(scan->frames[0].payload, "alpha");
  EXPECT_EQ(scan->frames[1].payload, "beta");
  EXPECT_EQ(scan->valid_end, log.size());
  EXPECT_FALSE(scan->torn_tail);
}

TEST(WalFormat, TruncatedTailIsTornNotCorrupt) {
  std::string log;
  AppendFrame(&log, "alpha");
  AppendFrame(&log, "beta");
  const std::size_t intact = log.size();
  AppendFrame(&log, "gamma-longer-payload");
  // Chop the last frame at every possible length: always a torn tail,
  // never corruption, and the valid prefix always holds the two frames.
  for (std::size_t cut = intact; cut < log.size(); ++cut) {
    const auto scan = ScanFrames(std::string_view(log).substr(0, cut));
    ASSERT_TRUE(scan.ok()) << "cut=" << cut;
    EXPECT_EQ(scan->frames.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(scan->valid_end, intact) << "cut=" << cut;
    EXPECT_EQ(scan->torn_tail, cut > intact) << "cut=" << cut;
  }
}

TEST(WalFormat, BitFlipIsCorruption) {
  std::string log;
  AppendFrame(&log, "alpha");
  AppendFrame(&log, "beta");
  // Flip one bit in the middle of the first payload: the frame is complete
  // so this must be a loud kCorruption, not a silent truncation.
  log[kFrameHeaderBytes + 2] ^= 0x20;
  const auto scan = ScanFrames(log);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kCorruption);
}

TEST(WalFormat, InsaneLengthIsCorruption) {
  std::string log;
  // A zero-length frame is never written; a complete header claiming one
  // cannot be a torn tail.
  PutU32(&log, 0);
  PutU32(&log, 0);
  auto scan = ScanFrames(log);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kCorruption);

  log.clear();
  PutU32(&log, kMaxFramePayload + 1);
  PutU32(&log, 0x1234);
  scan = ScanFrames(log);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Record encoding.

TEST(WalFormat, RecordRoundTrip) {
  WalRecord write;
  write.type = WalRecordType::kWrite;
  write.ticket = 41;
  write.txn = 7;
  write.init_ts = 1234;
  write.granule = 3;
  write.value = -99;
  const auto decoded = DecodeWalRecord(EncodeWalRecord(write));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, WalRecordType::kWrite);
  EXPECT_EQ(decoded->ticket, 41u);
  EXPECT_EQ(decoded->txn, 7u);
  EXPECT_EQ(decoded->init_ts, 1234u);
  EXPECT_EQ(decoded->granule, 3u);
  EXPECT_EQ(decoded->value, -99);

  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.ticket = 42;
  commit.txn = 7;
  commit.init_ts = 1234;
  commit.segments = {2, 5, 9};
  const auto commit_decoded = DecodeWalRecord(EncodeWalRecord(commit));
  ASSERT_TRUE(commit_decoded.ok());
  EXPECT_EQ(commit_decoded->segments, (std::vector<SegmentId>{2, 5, 9}));

  WalRecord bound;
  bound.type = WalRecordType::kReadBound;
  bound.ticket = 43;
  bound.init_ts = 777;
  const auto bound_decoded = DecodeWalRecord(EncodeWalRecord(bound));
  ASSERT_TRUE(bound_decoded.ok());
  EXPECT_EQ(bound_decoded->type, WalRecordType::kReadBound);
  EXPECT_EQ(bound_decoded->init_ts, 777u);
}

TEST(WalFormat, TruncatedRecordIsCorruption) {
  WalRecord write;
  write.type = WalRecordType::kWrite;
  write.txn = 7;
  const std::string payload = EncodeWalRecord(write);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const auto decoded =
        DecodeWalRecord(std::string_view(payload).substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
  EXPECT_FALSE(DecodeWalRecord("\x09garbage").ok());  // unknown type
}

// ---------------------------------------------------------------------------
// SimWalStorage crash model.

TEST(WalStorage, SyncedBytesSurviveCrash) {
  SimWalStorage storage;
  Rng rng(7);
  ASSERT_TRUE(storage.Append("a.log", "synced-part").ok());
  ASSERT_TRUE(storage.Sync("a.log").ok());
  ASSERT_TRUE(storage.Append("a.log", "buffered-part").ok());
  EXPECT_EQ(storage.BufferedBytes(), 13u);
  storage.Crash(rng);
  const auto data = storage.Read("a.log");
  ASSERT_TRUE(data.ok());
  // The synced prefix survives; some prefix of the buffered tail may ride
  // along (that is the point of the model).
  ASSERT_GE(data->size(), 11u);
  EXPECT_EQ(data->substr(0, 11), "synced-part");
  EXPECT_EQ(data->substr(11), std::string("buffered-part").substr(
                                  0, data->size() - 11));
  EXPECT_EQ(storage.BufferedBytes(), 0u);  // survivors are now durable
}

TEST(WalStorage, CrashLossIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    SimWalStorage storage;
    for (int f = 0; f < 4; ++f) {
      const std::string name = "f" + std::to_string(f);
      (void)storage.Append(name, std::string(64, 'x'));
    }
    Rng rng(seed);
    storage.Crash(rng);
    std::string shape;
    for (int f = 0; f < 4; ++f) {
      shape += std::to_string(
                   storage.Read("f" + std::to_string(f))->size()) +
               ",";
    }
    return shape;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // virtually certain with 4 x 64 bytes at stake
}

TEST(WalStorage, FailNextSyncsInjectsIoError) {
  SimWalStorage storage;
  ASSERT_TRUE(storage.Append("a.log", "data").ok());
  storage.FailNextSyncs(1);
  const Status failed = storage.Sync("a.log");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_TRUE(storage.Sync("a.log").ok());  // next sync succeeds again
}

// ---------------------------------------------------------------------------
// WalManager: tickets, group commit, sticky errors.

TEST(WalManager, TicketsAreDenseAndSyncModesAck) {
  SimWalStorage storage;
  WalOptions options;
  options.group.mode = WalSyncMode::kPerCommit;
  auto wal = WalManager::Open(&storage, /*num_segments=*/2, options);
  ASSERT_TRUE(wal.ok());
  const auto t1 = (*wal)->LogWrite(0, /*txn=*/1, /*init_ts=*/10, 0, 42);
  const auto t2 = (*wal)->LogWrite(1, /*txn=*/1, /*init_ts=*/10, 0, 43);
  const auto t3 = (*wal)->LogCommit(0, /*txn=*/1, /*init_ts=*/10, {0});
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());
  EXPECT_EQ(*t1, 1u);
  EXPECT_EQ(*t2, 2u);
  EXPECT_EQ(*t3, 3u);
  ASSERT_TRUE((*wal)->WaitDurable(*t3).ok());
  EXPECT_EQ(storage.BufferedBytes(), 0u);
  EXPECT_GE((*wal)->metrics().fsyncs.load(), 1u);
}

TEST(WalManager, SyncFailureIsSticky) {
  SimWalStorage storage;
  WalOptions options;
  options.group.mode = WalSyncMode::kPerCommit;
  auto wal = WalManager::Open(&storage, 1, options);
  ASSERT_TRUE(wal.ok());
  const auto t1 = (*wal)->LogCommit(0, 1, 10, {0});
  ASSERT_TRUE(t1.ok());
  storage.FailNextSyncs(1);
  const Status failed = (*wal)->WaitDurable(*t1);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // The WAL refuses all further durability claims: it cannot know what
  // reached the disk.
  const auto t2 = (*wal)->LogCommit(0, 2, 11, {0});
  ASSERT_TRUE(t2.ok());
  EXPECT_FALSE((*wal)->WaitDurable(*t2).ok());
}

TEST(WalManager, CanaryMutationSkipsTheWait) {
  SimWalStorage storage;
  WalOptions options;
  options.group.mode = WalSyncMode::kPerCommit;
  options.mutation_skip_commit_sync = true;
  auto wal = WalManager::Open(&storage, 1, options);
  ASSERT_TRUE(wal.ok());
  const auto t1 = (*wal)->LogCommit(0, 1, 10, {0});
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE((*wal)->WaitDurable(*t1).ok());
  // Nothing was synced: the "ack" is a lie, which the crash sweep's canary
  // test must catch end to end.
  EXPECT_GT(storage.BufferedBytes(), 0u);
  EXPECT_EQ((*wal)->metrics().fsyncs.load(), 0u);
}

// ---------------------------------------------------------------------------
// Recovery. Helpers build a database and run transactions through the WAL
// the way HddController does: write records under the same ordering the
// latch would give, commit records after, then WaitDurable on ack.

std::unique_ptr<Database> TinyDb(int segments, std::uint32_t granules) {
  return std::make_unique<Database>(segments, granules, /*initial=*/0);
}

struct LoggedTxn {
  TxnId txn;
  Timestamp init_ts;
  SegmentId segment;
  std::uint32_t granule;
  Value value;
};

// Appends write+commit for one single-segment transaction and installs
// the version in `db` (mirroring the controller's latch section).
Status RunTxn(WalManager* wal, Database* db, const LoggedTxn& t,
              bool ack) {
  HDD_RETURN_IF_ERROR(
      wal->LogWrite(t.segment, t.txn, t.init_ts, t.granule, t.value)
          .status());
  Version v;
  v.order_key = t.init_ts;
  v.wts = t.init_ts;
  v.creator = t.txn;
  v.value = t.value;
  v.committed = false;
  HDD_RETURN_IF_ERROR(db->segment(t.segment).granule(t.granule).Insert(v));
  HDD_ASSIGN_OR_RETURN(const std::uint64_t ticket,
                       wal->LogCommit(t.segment, t.txn, t.init_ts,
                                      {t.segment}));
  db->segment(t.segment).granule(t.granule).Find(t.init_ts)->committed =
      true;
  if (ack) return wal->WaitDurable(ticket);
  return Status::OK();
}

TEST(WalRecovery, EmptyStorageRecoversToInitialState) {
  SimWalStorage storage;
  auto db = TinyDb(2, 2);
  const auto report = RecoverDatabase(&storage, db.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->durable_commits.empty());
  EXPECT_EQ(report->replayed_records, 0u);
  EXPECT_EQ(report->frontier_ticket, 0u);
  EXPECT_EQ(db->segment(0).granule(0).versions().size(), 1u);  // initial
}

TEST(WalRecovery, AckedCommitSurvivesUnackedMayNot) {
  SimWalStorage storage;
  WalOptions options;
  options.group.mode = WalSyncMode::kPerCommit;
  auto wal = WalManager::Open(&storage, 1, options);
  ASSERT_TRUE(wal.ok());
  auto db = TinyDb(1, 2);
  ASSERT_TRUE(RunTxn(wal->get(), db.get(),
                     {/*txn=*/1, /*init_ts=*/10, 0, 0, 111}, /*ack=*/true)
                  .ok());
  ASSERT_TRUE(RunTxn(wal->get(), db.get(),
                     {/*txn=*/2, /*init_ts=*/20, 0, 1, 222}, /*ack=*/false)
                  .ok());
  Rng rng(99);
  storage.Crash(rng);

  auto recovered = TinyDb(1, 2);
  const auto report = RecoverDatabase(&storage, recovered.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->durable_commits.count(1), 1u);  // acked: guaranteed
  const Version* v = recovered->segment(0).granule(0).Find(10);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, 111);
  EXPECT_TRUE(v->committed);
  EXPECT_GE(report->max_timestamp, 10u);
  // Txn 2 was never acked: it may or may not have survived, but if it did
  // not, no trace of it remains.
  if (report->durable_commits.count(2) == 0) {
    EXPECT_EQ(recovered->segment(0).granule(1).Find(20), nullptr);
  }
}

TEST(WalRecovery, TornCommitTailRollsBack) {
  SimWalStorage storage;
  WalOptions options;
  auto wal = WalManager::Open(&storage, 1, options);
  ASSERT_TRUE(wal.ok());
  auto db = TinyDb(1, 1);
  ASSERT_TRUE(RunTxn(wal->get(), db.get(), {1, 10, 0, 0, 111}, true).ok());
  ASSERT_TRUE(RunTxn(wal->get(), db.get(), {2, 20, 0, 0, 222}, false).ok());
  // Cut the log mid-way through txn 2's commit frame: a torn tail.
  const auto data = storage.Read(SegmentLogName(0));
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(storage.Truncate(SegmentLogName(0), data->size() - 3).ok());
  ASSERT_TRUE(storage.Sync(SegmentLogName(0)).ok());

  auto recovered = TinyDb(1, 1);
  const auto report = RecoverDatabase(&storage, recovered.get());
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->torn_streams, 1u);
  EXPECT_EQ(report->durable_commits.count(1), 1u);
  EXPECT_EQ(report->durable_commits.count(2), 0u);
  EXPECT_EQ(recovered->segment(0).granule(0).Find(20), nullptr);
  EXPECT_GE(report->discarded_uncommitted, 1u);  // txn 2's write replayed
  // The torn log was truncated and is reusable: recovery again is a no-op
  // on the same state (idempotence).
  auto again = TinyDb(1, 1);
  const auto report2 = RecoverDatabase(&storage, again.get());
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report2->torn_streams, 0u);
  EXPECT_EQ(report2->durable_commits, report->durable_commits);
  EXPECT_EQ(report2->frontier_ticket, report->frontier_ticket);
  ASSERT_NE(again->segment(0).granule(0).Find(10), nullptr);
}

TEST(WalRecovery, FrontierRollsBackLuckySurvivorWithLostDependency) {
  // Two single-segment transactions in DIFFERENT segments: the first
  // (earlier tickets) loses its records, the second's survive "by luck"
  // in the other file. Honoring the second would resurrect a transaction
  // whose causal past is gone — the frontier must roll it back.
  SimWalStorage storage;
  auto wal = WalManager::Open(&storage, 2, WalOptions{});
  ASSERT_TRUE(wal.ok());
  auto db = TinyDb(2, 1);
  ASSERT_TRUE(RunTxn(wal->get(), db.get(), {1, 10, /*segment=*/0, 0, 111},
                     false)
                  .ok());
  ASSERT_TRUE(RunTxn(wal->get(), db.get(), {2, 20, /*segment=*/1, 0, 222},
                     false)
                  .ok());
  // Crash model by hand: segment 0's file loses everything (nothing was
  // synced), segment 1's buffered bytes all "survive".
  ASSERT_TRUE(storage.Truncate(SegmentLogName(0), 0).ok());
  ASSERT_TRUE(storage.Sync(SegmentLogName(0)).ok());
  ASSERT_TRUE(storage.Sync(SegmentLogName(1)).ok());

  auto recovered = TinyDb(2, 1);
  const auto report = RecoverDatabase(&storage, recovered.get());
  ASSERT_TRUE(report.ok());
  // Tickets 1-2 (txn 1) are gone, so the frontier is 0 and txn 2's
  // surviving records (tickets 3-4) are dishonored and truncated away.
  EXPECT_EQ(report->frontier_ticket, 0u);
  EXPECT_TRUE(report->durable_commits.empty());
  EXPECT_GE(report->incomplete_commits, 1u);
  EXPECT_EQ(recovered->segment(1).granule(0).Find(20), nullptr);
  const auto remaining = storage.Read(SegmentLogName(1));
  ASSERT_TRUE(remaining.ok());
  EXPECT_TRUE(remaining->empty());  // physically truncated past the frontier
}

TEST(WalRecovery, CheckpointCoversPrefixAndSuffixReplays) {
  SimWalStorage storage;
  WalOptions options;
  options.group.mode = WalSyncMode::kPerCommit;
  auto wal = WalManager::Open(&storage, 1, options);
  ASSERT_TRUE(wal.ok());
  auto db = TinyDb(1, 2);
  ASSERT_TRUE(RunTxn(wal->get(), db.get(), {1, 10, 0, 0, 111}, true).ok());

  // Checkpoint the segment the way CheckpointWal does: chains + LSN in
  // one capture, logs already hardened (kPerCommit synced everything).
  SegmentCheckpoint ckpt;
  ckpt.chains = EncodeSegmentChains(db->segment(0));
  ckpt.log_end_lsn = (*wal)->LogEndLsn(0);
  ASSERT_TRUE(AppendSegmentCheckpoint(&storage, 0, ckpt).ok());

  // More work after the checkpoint, then a second txn acked.
  ASSERT_TRUE(RunTxn(wal->get(), db.get(), {2, 20, 0, 1, 222}, true).ok());

  auto recovered = TinyDb(1, 2);
  const auto report = RecoverDatabase(&storage, recovered.get());
  ASSERT_TRUE(report.ok());
  // Txn 1 comes from the snapshot (its records are at or below the ckpt
  // LSN and are NOT replayed); txn 2 replays from the suffix.
  EXPECT_EQ(report->durable_commits.count(1), 1u);
  EXPECT_EQ(report->durable_commits.count(2), 1u);
  EXPECT_EQ(report->replayed_records, 2u);  // txn 2's write + commit
  ASSERT_NE(recovered->segment(0).granule(0).Find(10), nullptr);
  ASSERT_NE(recovered->segment(0).granule(1).Find(20), nullptr);

  // A torn checkpoint tail falls back to the previous intact snapshot.
  const auto ckpt_data = storage.Read(SegmentCheckpointName(0));
  ASSERT_TRUE(ckpt_data.ok());
  ASSERT_TRUE(storage.Append(SegmentCheckpointName(0), "torn!").ok());
  ASSERT_TRUE(storage.Sync(SegmentCheckpointName(0)).ok());
  auto recovered2 = TinyDb(1, 2);
  const auto report2 = RecoverDatabase(&storage, recovered2.get());
  ASSERT_TRUE(report2.ok());
  EXPECT_GE(report2->torn_streams, 1u);
  EXPECT_EQ(report2->durable_commits, report->durable_commits);
}

TEST(WalRecovery, DoubleRecoveryIsIdempotent) {
  SimWalStorage storage;
  auto wal = WalManager::Open(&storage, 2, WalOptions{});
  ASSERT_TRUE(wal.ok());
  auto db = TinyDb(2, 2);
  for (TxnId t = 1; t <= 6; ++t) {
    ASSERT_TRUE(RunTxn(wal->get(), db.get(),
                       {t, 10 * t, static_cast<SegmentId>(t % 2),
                        static_cast<std::uint32_t>(t % 2), 100 + (int)t},
                       /*ack=*/t % 3 == 0)
                    .ok());
  }
  Rng rng(1234);
  storage.Crash(rng);

  auto first = TinyDb(2, 2);
  const auto r1 = RecoverDatabase(&storage, first.get());
  ASSERT_TRUE(r1.ok());
  // Run recovery AGAIN over the same storage and the already-recovered
  // database object: every count except torn/truncation work must match,
  // and the chains must be unchanged.
  const auto r2 = RecoverDatabase(&storage, first.get());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->durable_commits, r1->durable_commits);
  EXPECT_EQ(r2->frontier_ticket, r1->frontier_ticket);
  EXPECT_EQ(r2->torn_streams, 0u);
  // An uncommitted write whose record sits at or below the frontier is
  // retained in the log, replayed, and re-discarded on every recovery —
  // the same count both times, never growing state.
  EXPECT_EQ(r2->discarded_uncommitted, r1->discarded_uncommitted);
  // And a fresh database recovers to the same chains.
  auto second = TinyDb(2, 2);
  ASSERT_TRUE(RecoverDatabase(&storage, second.get()).ok());
  for (int s = 0; s < 2; ++s) {
    for (std::uint32_t g = 0; g < 2; ++g) {
      const auto& a = first->segment(s).granule(g).versions();
      const auto& b = second->segment(s).granule(g).versions();
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].order_key, b[i].order_key);
        EXPECT_EQ(a[i].value, b[i].value);
        EXPECT_EQ(a[i].creator, b[i].creator);
        EXPECT_EQ(a[i].committed, b[i].committed);
      }
    }
  }
}

TEST(WalRecovery, AbortRecordRemovesTheVersion) {
  SimWalStorage storage;
  auto wal = WalManager::Open(&storage, 1, WalOptions{});
  ASSERT_TRUE(wal.ok());
  auto db = TinyDb(1, 1);
  ASSERT_TRUE(
      (*wal)->LogWrite(0, /*txn=*/1, /*init_ts=*/10, 0, 111).ok());
  ASSERT_TRUE((*wal)->LogAbort(0, /*txn=*/1, /*init_ts=*/10).ok());
  ASSERT_TRUE((*wal)->LogCommit(0, /*txn=*/2, /*init_ts=*/20, {0}).ok());
  ASSERT_TRUE((*wal)->AwaitReadStable().ok());

  auto recovered = TinyDb(1, 1);
  const auto report = RecoverDatabase(&storage, recovered.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(recovered->segment(0).granule(0).Find(10), nullptr);
  EXPECT_EQ(recovered->segment(0).granule(0).versions().size(), 1u);
}

TEST(WalRecovery, CorruptIntactFrameFailsLoudly) {
  SimWalStorage storage;
  auto wal = WalManager::Open(&storage, 1, WalOptions{});
  ASSERT_TRUE(wal.ok());
  auto db = TinyDb(1, 1);
  ASSERT_TRUE(RunTxn(wal->get(), db.get(), {1, 10, 0, 0, 111}, false).ok());
  ASSERT_TRUE((*wal)->AwaitReadStable().ok());
  auto data = storage.Read(SegmentLogName(0));
  ASSERT_TRUE(data.ok());
  std::string flipped = *data;
  flipped[kFrameHeaderBytes + 5] ^= 0x01;  // inside the first payload
  ASSERT_TRUE(storage.Truncate(SegmentLogName(0), 0).ok());
  ASSERT_TRUE(storage.Append(SegmentLogName(0), flipped).ok());
  ASSERT_TRUE(storage.Sync(SegmentLogName(0)).ok());

  auto recovered = TinyDb(1, 1);
  const auto report = RecoverDatabase(&storage, recovered.get());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace hdd
