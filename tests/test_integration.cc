#include <gtest/gtest.h>

#include <memory>

#include "engine/banking_workload.h"
#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"
#include "engine/synthetic_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

std::unique_ptr<HierarchySchema> MakeSchema(const PartitionSpec& spec) {
  auto schema = HierarchySchema::Create(spec);
  EXPECT_TRUE(schema.ok()) << schema.status();
  return std::make_unique<HierarchySchema>(std::move(schema).value());
}

// ---------------------------------------------------------------------
// Every controller must produce serializable executions of the paper's
// inventory application under real concurrency.
// ---------------------------------------------------------------------

class AllControllersInventoryTest
    : public ::testing::TestWithParam<ControllerKind> {};

TEST_P(AllControllersInventoryTest, ConcurrentInventoryIsSerializable) {
  InventoryWorkloadParams params;
  params.items = 8;
  InventoryWorkload workload(params);
  auto schema = MakeSchema(InventoryWorkload::Spec());
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  auto cc = CreateController(GetParam(), db.get(), &clock, schema.get());

  ExecutorOptions options;
  options.num_threads = 4;
  options.seed = 42;
  ExecutorStats stats = RunWorkload(*cc, workload, 400, options);
  EXPECT_EQ(stats.failed, 0u) << "transactions exhausted retry budget";
  EXPECT_EQ(stats.committed, 400u);

  auto report = CheckSerializability(cc->recorder());
  EXPECT_TRUE(report.serializable)
      << ControllerKindName(GetParam()) << " produced a dependency cycle";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AllControllersInventoryTest,
    ::testing::ValuesIn(AllControllerKinds()),
    [](const ::testing::TestParamInfo<ControllerKind>& info) {
      std::string name(ControllerKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Transfer-only banking: total money conserved iff no update is lost.
// ---------------------------------------------------------------------

class AllControllersBankingTest
    : public ::testing::TestWithParam<ControllerKind> {};

TEST_P(AllControllersBankingTest, TransfersConserveMoney) {
  BankingWorkloadParams params;
  params.accounts = 16;
  params.transfer_weight = 0.9;
  params.deposit_weight = 0.0;
  params.audit_weight = 0.1;
  BankingWorkload workload(params);
  auto schema = MakeSchema(workload.Spec());
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  auto cc = CreateController(GetParam(), db.get(), &clock, schema.get());

  ExecutorOptions options;
  options.num_threads = 4;
  options.seed = 7;
  ExecutorStats stats = RunWorkload(*cc, workload, 300, options);
  EXPECT_EQ(stats.failed, 0u);

  Value total = 0;
  for (std::uint32_t a = 0; a < params.accounts; ++a) {
    const Version* v = db->granule({0, a}).LatestCommitted();
    ASSERT_NE(v, nullptr);
    total += v->value;
  }
  EXPECT_EQ(total, workload.InitialTotal())
      << ControllerKindName(GetParam()) << " lost an update";
  EXPECT_TRUE(CheckSerializability(cc->recorder()).serializable);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AllControllersBankingTest,
    ::testing::ValuesIn(AllControllerKinds()),
    [](const ::testing::TestParamInfo<ControllerKind>& info) {
      std::string name(ControllerKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Synthetic hierarchies of several depths under HDD and the baselines.
// ---------------------------------------------------------------------

class SyntheticDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(SyntheticDepthTest, HddSerializableAtDepth) {
  SyntheticWorkloadParams params;
  params.depth = GetParam();
  params.granules_per_segment = 16;
  SyntheticWorkload workload(params);
  auto schema = MakeSchema(workload.Spec());
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  auto cc =
      CreateController(ControllerKind::kHdd, db.get(), &clock, schema.get());

  ExecutorOptions options;
  options.num_threads = 3;
  options.seed = 11;
  ExecutorStats stats = RunWorkload(*cc, workload, 300, options);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_TRUE(CheckSerializability(cc->recorder()).serializable);
  // Cross-class reads exist at depth >= 2 and must all be unregistered.
  if (GetParam() >= 2) {
    EXPECT_GT(cc->metrics().unregistered_reads.load(), 0u);
  }
  EXPECT_EQ(cc->metrics().read_locks_acquired.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Depths, SyntheticDepthTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// ---------------------------------------------------------------------
// The headline claim, measured: on the inventory mix HDD registers no
// cross-class or read-only read, while 2PL/TO/MVTO register every read.
// ---------------------------------------------------------------------

TEST(ReadRegistrationTest, HddRegistersOnlyRootSegmentReads) {
  InventoryWorkload workload;
  auto schema = MakeSchema(InventoryWorkload::Spec());
  auto make_db = [&] { return workload.MakeDatabase(); };

  ExecutorOptions options;
  options.num_threads = 4;
  auto hdd = MeasureController(ControllerKind::kHdd, workload, make_db,
                               schema.get(), 300, options);
  auto two_phase = MeasureController(ControllerKind::kTwoPhase, workload,
                                     make_db, schema.get(), 300, options);
  auto to = MeasureController(ControllerKind::kTimestampOrdering, workload,
                              make_db, schema.get(), 300, options);

  EXPECT_TRUE(hdd.serializable);
  EXPECT_TRUE(two_phase.serializable);
  EXPECT_TRUE(to.serializable);
  EXPECT_EQ(hdd.read_locks, 0u);
  EXPECT_GT(hdd.unregistered_reads, 0u);
  EXPECT_EQ(two_phase.unregistered_reads, 0u);
  EXPECT_GT(two_phase.read_locks, 0u);
  EXPECT_GT(to.read_timestamps, 0u);
  // Every HDD read timestamp comes from a root-segment (Protocol B) read;
  // TO registers strictly more (all reads).
  EXPECT_LT(hdd.read_timestamps, to.read_timestamps);
}

// ---------------------------------------------------------------------
// GC under load keeps the database readable.
// ---------------------------------------------------------------------

TEST(GcIntegrationTest, CollectDuringInventoryRun) {
  InventoryWorkload workload;
  auto schema = MakeSchema(InventoryWorkload::Spec());
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  HddController cc(db.get(), &clock, schema.get());

  ExecutorOptions options;
  options.num_threads = 2;
  for (int round = 0; round < 4; ++round) {
    ExecutorStats stats = RunWorkload(cc, workload, 100, options);
    EXPECT_EQ(stats.failed, 0u);
    const std::size_t before = db->TotalVersions();
    db->CollectGarbage(cc.SafeGcHorizon());
    EXPECT_LE(db->TotalVersions(), before);
  }
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

}  // namespace
}  // namespace hdd
