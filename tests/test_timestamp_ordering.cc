#include "cc/timestamp_ordering.h"

#include <gtest/gtest.h>

#include "txn/dependency_graph.h"

namespace hdd {
namespace {

constexpr GranuleRef kY{0, 0};
constexpr GranuleRef kX{1, 0};
constexpr GranuleRef kZ{2, 0};

class TimestampOrderingTest : public ::testing::Test {
 protected:
  TimestampOrderingTest() : db_(3, 2, 0) {}

  Database db_;
  LogicalClock clock_;
};

TEST_F(TimestampOrderingTest, BasicReadWriteCommit) {
  TimestampOrdering cc(&db_, &clock_);
  auto txn = cc.Begin({});
  ASSERT_TRUE(cc.Write(*txn, kX, 5).ok());
  auto value = cc.Read(*txn, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 5);
  ASSERT_TRUE(cc.Commit(*txn).ok());

  auto later = cc.Begin({});
  auto later_value = cc.Read(*later, kX);
  ASSERT_TRUE(later_value.ok());
  EXPECT_EQ(*later_value, 5);
  ASSERT_TRUE(cc.Commit(*later).ok());
}

TEST_F(TimestampOrderingTest, OldReaderAbortsOnNewerWrite) {
  TimestampOrdering cc(&db_, &clock_);
  auto old_txn = cc.Begin({});
  auto young_txn = cc.Begin({});
  ASSERT_TRUE(cc.Write(*young_txn, kX, 9).ok());
  ASSERT_TRUE(cc.Commit(*young_txn).ok());
  // The old transaction now finds a younger write timestamp.
  auto read = cc.Read(*old_txn, kX);
  EXPECT_EQ(read.status().code(), StatusCode::kAborted);
  ASSERT_TRUE(cc.Abort(*old_txn).ok());
}

TEST_F(TimestampOrderingTest, OldWriterAbortsOnNewerRead) {
  TimestampOrdering cc(&db_, &clock_);
  auto old_txn = cc.Begin({});
  auto young_txn = cc.Begin({});
  ASSERT_TRUE(cc.Read(*young_txn, kX).ok());  // registers rts
  ASSERT_TRUE(cc.Commit(*young_txn).ok());
  EXPECT_EQ(cc.Write(*old_txn, kX, 1).code(), StatusCode::kAborted);
  ASSERT_TRUE(cc.Abort(*old_txn).ok());
  EXPECT_GT(cc.metrics().read_timestamps_written.load(), 0u);
}

TEST_F(TimestampOrderingTest, OldWriterAbortsOnNewerWrite) {
  TimestampOrdering cc(&db_, &clock_);
  auto old_txn = cc.Begin({});
  auto young_txn = cc.Begin({});
  ASSERT_TRUE(cc.Write(*young_txn, kX, 9).ok());
  ASSERT_TRUE(cc.Commit(*young_txn).ok());
  EXPECT_EQ(cc.Write(*old_txn, kX, 1).code(), StatusCode::kAborted);
  ASSERT_TRUE(cc.Abort(*old_txn).ok());
}

TEST_F(TimestampOrderingTest, ThomasWriteRuleSkipsObsoleteWrite) {
  TimestampOrderingOptions options;
  options.thomas_write_rule = true;
  TimestampOrdering cc(&db_, &clock_, options);
  auto old_txn = cc.Begin({});
  auto young_txn = cc.Begin({});
  ASSERT_TRUE(cc.Write(*young_txn, kX, 9).ok());
  ASSERT_TRUE(cc.Commit(*young_txn).ok());
  // Obsolete write is dropped, not aborted.
  EXPECT_TRUE(cc.Write(*old_txn, kX, 1).ok());
  ASSERT_TRUE(cc.Commit(*old_txn).ok());
  auto reader = cc.Begin({});
  auto value = cc.Read(*reader, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 9);  // younger write survives
  ASSERT_TRUE(cc.Commit(*reader).ok());
}

TEST_F(TimestampOrderingTest, AbortRemovesVersion) {
  TimestampOrdering cc(&db_, &clock_);
  auto t1 = cc.Begin({});
  ASSERT_TRUE(cc.Write(*t1, kX, 11).ok());
  ASSERT_TRUE(cc.Abort(*t1).ok());
  auto t2 = cc.Begin({});
  auto value = cc.Read(*t2, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0);
  ASSERT_TRUE(cc.Commit(*t2).ok());
}

TEST_F(TimestampOrderingTest, RewriteOwnVersion) {
  TimestampOrdering cc(&db_, &clock_);
  auto txn = cc.Begin({});
  ASSERT_TRUE(cc.Write(*txn, kX, 1).ok());
  ASSERT_TRUE(cc.Write(*txn, kX, 2).ok());
  auto value = cc.Read(*txn, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 2);
  ASSERT_TRUE(cc.Commit(*txn).ok());
  EXPECT_EQ(cc.metrics().versions_created.load(), 1u);
}

TEST_F(TimestampOrderingTest, Figure4AnomalyWithoutReadTimestamps) {
  // Paper Figure 4: if the type-3 transaction leaves no read timestamps,
  // timestamp ordering admits a non-serializable execution.
  TimestampOrderingOptions options;
  options.register_reads = false;
  TimestampOrdering cc(&db_, &clock_, options);

  auto t3 = cc.Begin({.txn_class = 2});  // oldest timestamp
  auto y_old = cc.Read(*t3, kY);         // unregistered: sees 0
  ASSERT_TRUE(y_old.ok());
  EXPECT_EQ(*y_old, 0);

  auto t1 = cc.Begin({.txn_class = 0});
  // With registration t3's read would have either aborted t1's write or
  // left a read timestamp forcing it to abort; without, it sails through.
  ASSERT_TRUE(cc.Write(*t1, kY, 1).ok());
  ASSERT_TRUE(cc.Commit(*t1).ok());

  auto t2 = cc.Begin({.txn_class = 1});
  auto y_new = cc.Read(*t2, kY);
  ASSERT_TRUE(y_new.ok());
  ASSERT_TRUE(cc.Write(*t2, kX, *y_new).ok());
  ASSERT_TRUE(cc.Commit(*t2).ok());

  auto x = cc.Read(*t3, kX);  // unregistered: sees the *younger* value
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, 1);
  ASSERT_TRUE(cc.Write(*t3, kZ, *x).ok());
  ASSERT_TRUE(cc.Commit(*t3).ok());

  auto report = CheckSerializability(cc.recorder());
  EXPECT_FALSE(report.serializable);
  EXPECT_EQ(cc.metrics().read_timestamps_written.load(), 0u);
}

TEST_F(TimestampOrderingTest, Figure4ScriptSafeWithReadTimestamps) {
  // The same script under full TO: t3 cannot read the younger inventory
  // version; TO aborts it instead of violating serializability.
  TimestampOrdering cc(&db_, &clock_);

  auto t3 = cc.Begin({.txn_class = 2});
  ASSERT_TRUE(cc.Read(*t3, kY).ok());

  auto t1 = cc.Begin({.txn_class = 0});
  // t3's read left rts on y: t1 (younger) writing y is fine (rts < ts(t1)).
  ASSERT_TRUE(cc.Write(*t1, kY, 1).ok());
  ASSERT_TRUE(cc.Commit(*t1).ok());

  auto t2 = cc.Begin({.txn_class = 1});
  ASSERT_TRUE(cc.Read(*t2, kY).ok());
  ASSERT_TRUE(cc.Write(*t2, kX, 1).ok());
  ASSERT_TRUE(cc.Commit(*t2).ok());

  auto x = cc.Read(*t3, kX);
  EXPECT_EQ(x.status().code(), StatusCode::kAborted);
  ASSERT_TRUE(cc.Abort(*t3).ok());

  auto report = CheckSerializability(cc.recorder());
  EXPECT_TRUE(report.serializable);
}

TEST_F(TimestampOrderingTest, CounterIncrementsNeverLost) {
  TimestampOrdering cc(&db_, &clock_);
  int committed = 0;
  for (int i = 0; i < 30; ++i) {
    auto txn = cc.Begin({});
    auto value = cc.Read(*txn, kX);
    if (!value.ok()) {
      ASSERT_TRUE(cc.Abort(*txn).ok());
      continue;
    }
    if (!cc.Write(*txn, kX, *value + 1).ok()) {
      ASSERT_TRUE(cc.Abort(*txn).ok());
      continue;
    }
    ASSERT_TRUE(cc.Commit(*txn).ok());
    ++committed;
  }
  auto reader = cc.Begin({});
  auto final_value = cc.Read(*reader, kX);
  ASSERT_TRUE(final_value.ok());
  EXPECT_EQ(*final_value, committed);
  ASSERT_TRUE(cc.Commit(*reader).ok());
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

}  // namespace
}  // namespace hdd
