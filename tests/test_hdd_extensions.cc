// Tests for the library's extensions of the paper's core: hosted
// single-critical-path read-only transactions (§5.0), idle-point activity
// trimming, and concurrent-safe garbage collection (§7.3).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "engine/executor.h"
#include "engine/inventory_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

PartitionSpec InventorySpec() { return InventoryWorkload::Spec(); }

constexpr GranuleRef kEvent{0, 0};
constexpr GranuleRef kInventory{1, 0};
constexpr GranuleRef kOrder{2, 0};

class HddExtensionsTest : public ::testing::Test {
 protected:
  HddExtensionsTest() : db_(4, 2, 0) {
    auto schema = HierarchySchema::Create(InventorySpec());
    EXPECT_TRUE(schema.ok());
    schema_ = std::make_unique<HierarchySchema>(std::move(schema).value());
    cc_ = std::make_unique<HddController>(&db_, &clock_, schema_.get());
  }

  Database db_;
  LogicalClock clock_;
  std::unique_ptr<HierarchySchema> schema_;
  std::unique_ptr<HddController> cc_;
};

// --------------------------- hosted read-only ---------------------------

TEST_F(HddExtensionsTest, HostedReadOnlyOnCriticalPath) {
  auto writer = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(cc_->Write(*writer, kEvent, 5).ok());
  ASSERT_TRUE(cc_->Commit(*writer).ok());

  // Figure 8's t1: reads events + inventory, both on one critical path.
  auto reader =
      cc_->Begin({.read_only = true, .read_scope = {0, 1}});
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto ev = cc_->Read(*reader, kEvent);
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(*ev, 5);
  ASSERT_TRUE(cc_->Read(*reader, kInventory).ok());
  ASSERT_TRUE(cc_->Commit(*reader).ok());

  // Served by Protocol A, not by a time wall.
  EXPECT_EQ(cc_->num_walls(), 0u);
  EXPECT_EQ(cc_->metrics().read_timestamps_written.load(), 0u);
  EXPECT_EQ(cc_->metrics().blocked_reads.load(), 0u);
  EXPECT_TRUE(CheckSerializability(cc_->recorder()).serializable);
}

TEST_F(HddExtensionsTest, HostedReaderSkipsInFlightWriter) {
  auto writer = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(cc_->Write(*writer, kEvent, 42).ok());

  auto reader = cc_->Begin({.read_only = true, .read_scope = {0}});
  ASSERT_TRUE(reader.ok());
  auto value = cc_->Read(*reader, kEvent);  // never waits on the writer
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0);
  ASSERT_TRUE(cc_->Commit(*reader).ok());
  ASSERT_TRUE(cc_->Commit(*writer).ok());
  EXPECT_EQ(cc_->metrics().blocked_reads.load(), 0u);
}

TEST_F(HddExtensionsTest, HostedScopeOffCriticalPathRejected) {
  // Every pair of inventory-app segments lies on the single chain, so an
  // illegal scope needs incomparable classes: use a sibling-branch schema.
  PartitionSpec spec;
  spec.segment_names = {"top", "left", "right"};
  spec.transaction_types = {
      {"t", 0, {}},
      {"l", 1, {0}},
      {"r", 2, {0}},
  };
  auto schema = HierarchySchema::Create(spec);
  ASSERT_TRUE(schema.ok());
  Database db(3, 1, 0);
  LogicalClock clock;
  HddController cc(&db, &clock, &*schema);
  auto reader = cc.Begin({.read_only = true, .read_scope = {1, 2}});
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(HddExtensionsTest, HostedReadOutsideScopeRejected) {
  auto reader = cc_->Begin({.read_only = true, .read_scope = {1}});
  ASSERT_TRUE(reader.ok());
  // inventory(1) declared; orders(2) is BELOW it: not readable.
  auto bad = cc_->Read(*reader, kOrder);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // events(0) is above the host class's path top? The host is class 1 and
  // events is higher than 1, so it is on the critical path upward and IS
  // readable — the scope declares the path's lowest point.
  EXPECT_TRUE(cc_->Read(*reader, kEvent).ok());
  ASSERT_TRUE(cc_->Commit(*reader).ok());
}

TEST_F(HddExtensionsTest, HostedReaderSerializableUnderConcurrency) {
  InventoryWorkloadParams params;
  params.items = 2;
  params.read_only_weight = 0;
  InventoryWorkload workload(params);
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  HddController cc(db.get(), &clock, schema_.get());

  std::atomic<bool> stop{false};
  std::thread updater([&] {
    Rng rng(3);
    std::uint64_t index = 0;
    while (!stop.load()) {
      TxnProgram program = workload.Make(index++, rng);
      auto txn = cc.Begin(program.options);
      if (program.body(cc, *txn).ok()) {
        (void)cc.Commit(*txn);
      } else {
        (void)cc.Abort(*txn);
      }
    }
  });
  for (int i = 0; i < 50; ++i) {
    auto reader = cc.Begin({.read_only = true, .read_scope = {0, 1, 2}});
    ASSERT_TRUE(reader.ok());
    ASSERT_TRUE(cc.Read(*reader, {2, 0}).ok());
    ASSERT_TRUE(cc.Read(*reader, {1, 0}).ok());
    ASSERT_TRUE(cc.Read(*reader, {0, 0}).ok());
    ASSERT_TRUE(cc.Commit(*reader).ok());
  }
  stop = true;
  updater.join();
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
  EXPECT_EQ(cc.num_walls(), 0u);
}

// --------------------------- history trimming ---------------------------

TEST_F(HddExtensionsTest, IdlePointTrimsHistory) {
  for (int i = 0; i < 10; ++i) {
    auto txn = cc_->Begin({.txn_class = 0});
    ASSERT_TRUE(cc_->Write(*txn, kEvent, i).ok());
    ASSERT_TRUE(cc_->Commit(*txn).ok());
  }
  // Each commit reached an idle point, so history stays tiny.
  EXPECT_LE(cc_->ActivityHistorySize(), 1u);
}

TEST_F(HddExtensionsTest, NoTrimWhileTransactionsActive) {
  HddControllerOptions options;
  options.auto_trim_history = true;
  HddController cc(&db_, &clock_, schema_.get(), options);
  auto pin = cc.Begin({.txn_class = 3});  // keeps the system non-idle
  for (int i = 0; i < 10; ++i) {
    auto txn = cc.Begin({.txn_class = 0});
    ASSERT_TRUE(cc.Write(*txn, kEvent, i).ok());
    ASSERT_TRUE(cc.Commit(*txn).ok());
  }
  EXPECT_EQ(cc.ActivityHistorySize(), 10u);
  // Protocol A through the pinned era still works correctly.
  auto reader = cc.Begin({.txn_class = 1});
  ASSERT_TRUE(cc.Read(*reader, kEvent).ok());
  ASSERT_TRUE(cc.Commit(*reader).ok());
  ASSERT_TRUE(cc.Commit(*pin).ok());
  EXPECT_LE(cc.ActivityHistorySize(), 1u);  // trimmed at the idle point
}

TEST_F(HddExtensionsTest, TrimDisabledKeepsHistory) {
  HddControllerOptions options;
  options.auto_trim_history = false;
  HddController cc(&db_, &clock_, schema_.get(), options);
  for (int i = 0; i < 10; ++i) {
    auto txn = cc.Begin({.txn_class = 0});
    ASSERT_TRUE(cc.Write(*txn, kEvent, i).ok());
    ASSERT_TRUE(cc.Commit(*txn).ok());
  }
  EXPECT_EQ(cc.ActivityHistorySize(), 10u);
}

// ------------------------------ safe GC --------------------------------

TEST_F(HddExtensionsTest, ConcurrentGcKeepsExecutionCorrect) {
  InventoryWorkloadParams params;
  params.items = 4;
  params.read_only_weight = 0;  // no walls: the final horizon is fresh
  InventoryWorkload workload(params);
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  HddController cc(db.get(), &clock, schema_.get());

  std::atomic<bool> stop{false};
  std::thread gc_thread([&] {
    while (!stop.load()) {
      (void)cc.CollectGarbage();
      std::this_thread::yield();
    }
  });
  ExecutorOptions options;
  options.num_threads = 3;
  ExecutorStats stats = RunWorkload(cc, workload, 400, options);
  stop = true;
  gc_thread.join();

  EXPECT_EQ(stats.failed, 0u);
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
  // GC with a fresh horizon afterwards compacts to ~1 version/granule.
  (void)cc.CollectGarbage();
  EXPECT_LE(db->TotalVersions(),
            static_cast<std::size_t>(4 * params.event_slots_per_item +
                                     3 * params.items + 8));
}

// ------------------------------ wall pacer -----------------------------

TEST_F(HddExtensionsTest, WallPacerReleasesPeriodically) {
  cc_->StartWallPacer(std::chrono::milliseconds(5));
  // Keep a light update stream alive so walls have something to cut.
  for (int i = 0; i < 10; ++i) {
    auto txn = cc_->Begin({.txn_class = 0});
    ASSERT_TRUE(cc_->Write(*txn, kEvent, i).ok());
    ASSERT_TRUE(cc_->Commit(*txn).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  cc_->StopWallPacer();
  EXPECT_GE(cc_->num_walls(), 2u);
  const std::size_t frozen = cc_->num_walls();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_EQ(cc_->num_walls(), frozen);  // pacer really stopped

  // Readers ride the paced walls without triggering their own.
  auto reader = cc_->Begin({.read_only = true});
  ASSERT_TRUE(cc_->Read(*reader, kEvent).ok());
  ASSERT_TRUE(cc_->Commit(*reader).ok());
  EXPECT_EQ(cc_->num_walls(), frozen);
}

TEST_F(HddExtensionsTest, WallPacerRestartAndDestruction) {
  cc_->StartWallPacer(std::chrono::milliseconds(50));
  cc_->StartWallPacer(std::chrono::milliseconds(5));  // idempotent restart
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  cc_->StopWallPacer();
  cc_->StopWallPacer();  // double stop is a no-op
  // Destructor with a running pacer must not hang (covered by fixture
  // teardown after this restart):
  cc_->StartWallPacer(std::chrono::milliseconds(5));
}

// -------------------------- failure injection --------------------------

TEST_F(HddExtensionsTest, RandomClientAbortsLeaveNoTrace) {
  InventoryWorkloadParams params;
  params.items = 4;
  InventoryWorkload workload(params);
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  HddController cc(db.get(), &clock, schema_.get());

  Rng rng(123);
  std::uint64_t index = 0;
  int committed = 0;
  for (int i = 0; i < 300; ++i) {
    TxnProgram program = workload.Make(index++, rng);
    auto txn = cc.Begin(program.options);
    ASSERT_TRUE(txn.ok());
    Status body = program.body(cc, *txn);
    if (!body.ok() || rng.NextBool(0.3)) {
      ASSERT_TRUE(cc.Abort(*txn).ok());  // client-initiated abort
      continue;
    }
    ASSERT_TRUE(cc.Commit(*txn).ok());
    ++committed;
  }
  EXPECT_GT(committed, 0);
  // No uncommitted version may survive.
  for (SegmentId s = 0; s < db->num_segments(); ++s) {
    Segment& seg = db->segment(s);
    const std::uint32_t count = seg.size();
    std::lock_guard<std::mutex> guard(seg.latch());
    for (std::uint32_t g = 0; g < count; ++g) {
      for (const Version& v : seg.granule(g).versions()) {
        EXPECT_TRUE(v.committed) << "segment " << s << " granule " << g;
      }
    }
  }
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST_F(HddExtensionsTest, DoubleCommitAndUseAfterFinishRejected) {
  auto txn = cc_->Begin({.txn_class = 0});
  ASSERT_TRUE(cc_->Commit(*txn).ok());
  EXPECT_EQ(cc_->Commit(*txn).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cc_->Abort(*txn).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cc_->Read(*txn, kEvent).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cc_->Write(*txn, kEvent, 1).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace hdd
