#include "hdd/time_wall.h"

#include <gtest/gtest.h>

#include <memory>

namespace hdd {
namespace {

class TimeWallUnitTest : public ::testing::Test {
 protected:
  void Build(const Digraph& g) {
    auto tst = TstAnalysis::Create(g);
    ASSERT_TRUE(tst.ok());
    tst_ = std::make_unique<TstAnalysis>(std::move(tst).value());
    tables_.clear();
    tables_.resize(g.num_nodes());
    eval_ = std::make_unique<ActivityLinkEvaluator>(tst_.get(), &tables_);
  }

  std::unique_ptr<TstAnalysis> tst_;
  std::vector<ClassActivityTable> tables_;
  std::unique_ptr<ActivityLinkEvaluator> eval_;
};

TEST_F(TimeWallUnitTest, AnchorPrefersLowestOfChain) {
  Digraph g(3);
  g.AddArc(2, 1);
  g.AddArc(1, 0);
  Build(g);
  EXPECT_EQ(PickWallAnchor(*tst_), 2);
}

TEST_F(TimeWallUnitTest, AnchorTieBreaksToSmallestId) {
  // Two independent chains of equal height: 1 -> 0 and 3 -> 2.
  Digraph g(4);
  g.AddArc(1, 0);
  g.AddArc(3, 2);
  Build(g);
  EXPECT_EQ(PickWallAnchor(*tst_), 1);
}

TEST_F(TimeWallUnitTest, WallDefaultsForUnreachableClasses) {
  // Class 2 is in a different weak component from anchor 1.
  Digraph g(3);
  g.AddArc(1, 0);
  Build(g);
  tables_[0].OnBegin(4);
  tables_[0].OnFinish(4, 9);
  auto wall = ComputeTimeWall(*eval_, 3, /*s=*/1, /*m=*/7);
  ASSERT_TRUE(wall.ok());
  EXPECT_EQ(wall->bound[1], 7u);  // anchor: identity
  EXPECT_EQ(wall->bound[0], 4u);  // I_old_0(7) = 4 (txn [4,9) active at 7)
  EXPECT_EQ(wall->bound[2], 7u);  // unreachable: defaults to m
}

TEST_F(TimeWallUnitTest, WallBusyPropagates) {
  // Descent anchored above a sibling: anchor 1 of   1 -> 0 <- 2 requires
  // C^late at class 0 on the way down to 2; an active class-0 txn blocks.
  Digraph g(3);
  g.AddArc(1, 0);
  g.AddArc(2, 0);
  Build(g);
  tables_[0].OnBegin(3);
  auto wall = ComputeTimeWall(*eval_, 3, /*s=*/1, /*m=*/8);
  EXPECT_EQ(wall.status().code(), StatusCode::kBusy);
  tables_[0].OnFinish(3, 10);
  auto retry = ComputeTimeWall(*eval_, 3, /*s=*/1, /*m=*/8);
  ASSERT_TRUE(retry.ok());
  // Component for class 2: up to 0 (I_old_0(8) = 3), then down to 2
  // applying C^late at class 0: C_late_0(3) = 3 (txn not active AT 3).
  EXPECT_EQ(retry->bound[2], 3u);
}

TEST_F(TimeWallUnitTest, WallMetadataFilled) {
  Digraph g(2);
  g.AddArc(1, 0);
  Build(g);
  auto wall = ComputeTimeWall(*eval_, 2, 1, 5);
  ASSERT_TRUE(wall.ok());
  EXPECT_EQ(wall->m, 5u);
  EXPECT_EQ(wall->s, 1);
  EXPECT_EQ(wall->bound.size(), 2u);
  EXPECT_EQ(wall->bound[1], 5u);
}

}  // namespace
}  // namespace hdd
