#include "hdd/time_wall.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "hdd/hdd_controller.h"

namespace hdd {
namespace {

class TimeWallUnitTest : public ::testing::Test {
 protected:
  void Build(const Digraph& g) {
    auto tst = TstAnalysis::Create(g);
    ASSERT_TRUE(tst.ok());
    tst_ = std::make_unique<TstAnalysis>(std::move(tst).value());
    tables_.clear();
    tables_.resize(g.num_nodes());
    eval_ = std::make_unique<ActivityLinkEvaluator>(tst_.get(), &tables_);
  }

  std::unique_ptr<TstAnalysis> tst_;
  std::vector<ClassActivityTable> tables_;
  std::unique_ptr<ActivityLinkEvaluator> eval_;
};

TEST_F(TimeWallUnitTest, AnchorPrefersLowestOfChain) {
  Digraph g(3);
  g.AddArc(2, 1);
  g.AddArc(1, 0);
  Build(g);
  EXPECT_EQ(PickWallAnchor(*tst_), 2);
}

TEST_F(TimeWallUnitTest, AnchorTieBreaksToSmallestId) {
  // Two independent chains of equal height: 1 -> 0 and 3 -> 2.
  Digraph g(4);
  g.AddArc(1, 0);
  g.AddArc(3, 2);
  Build(g);
  EXPECT_EQ(PickWallAnchor(*tst_), 1);
}

TEST_F(TimeWallUnitTest, WallDefaultsForUnreachableClasses) {
  // Class 2 is in a different weak component from anchor 1.
  Digraph g(3);
  g.AddArc(1, 0);
  Build(g);
  tables_[0].OnBegin(4);
  tables_[0].OnFinish(4, 9);
  auto wall = ComputeTimeWall(*eval_, 3, /*s=*/1, /*m=*/7);
  ASSERT_TRUE(wall.ok());
  EXPECT_EQ(wall->bound[1], 7u);  // anchor: identity
  EXPECT_EQ(wall->bound[0], 4u);  // I_old_0(7) = 4 (txn [4,9) active at 7)
  EXPECT_EQ(wall->bound[2], 7u);  // unreachable: defaults to m
}

TEST_F(TimeWallUnitTest, WallBusyPropagates) {
  // Descent anchored above a sibling: anchor 1 of   1 -> 0 <- 2 requires
  // C^late at class 0 on the way down to 2; an active class-0 txn blocks.
  Digraph g(3);
  g.AddArc(1, 0);
  g.AddArc(2, 0);
  Build(g);
  tables_[0].OnBegin(3);
  auto wall = ComputeTimeWall(*eval_, 3, /*s=*/1, /*m=*/8);
  EXPECT_EQ(wall.status().code(), StatusCode::kBusy);
  tables_[0].OnFinish(3, 10);
  auto retry = ComputeTimeWall(*eval_, 3, /*s=*/1, /*m=*/8);
  ASSERT_TRUE(retry.ok());
  // Component for class 2: up to 0 (I_old_0(8) = 3), then down to 2
  // applying C^late at class 0: C_late_0(3) = 3 (txn not active AT 3).
  EXPECT_EQ(retry->bound[2], 3u);
}

TEST_F(TimeWallUnitTest, WallMetadataFilled) {
  Digraph g(2);
  g.AddArc(1, 0);
  Build(g);
  auto wall = ComputeTimeWall(*eval_, 2, 1, 5);
  ASSERT_TRUE(wall.ok());
  EXPECT_EQ(wall->m, 5u);
  EXPECT_EQ(wall->s, 1);
  EXPECT_EQ(wall->bound.size(), 2u);
  EXPECT_EQ(wall->bound[1], 5u);
}

// ---------------------------------------------------------------------------
// Property test: on randomized small hierarchies with randomized
// transaction histories, every component of a released time wall must
// equal an INDEPENDENTLY computed consistent cut. The reference below
// re-derives the paper's link functions directly from raw transaction
// intervals — no ClassActivityTable, no run decomposition — walking the
// undirected critical path arc by arc:
//   ascending arc  (u -> w critical):  v = I^old_w(v)
//   descending arc (w -> u critical):  v = C^late_u(v)
// which expands to exactly the A/B compositions E is defined from (§5.1).

struct RefHistory {
  std::vector<Timestamp> active;                     // initiation times
  std::vector<std::pair<Timestamp, Timestamp>> finished;  // [init, end)
};

Timestamp RefIOld(const RefHistory& h, Timestamp m) {
  Timestamp best = m;
  for (Timestamp init : h.active) {
    if (init < m) best = std::min(best, init);
  }
  for (const auto& [init, end] : h.finished) {
    if (init < m && end > m) best = std::min(best, init);
  }
  return best;
}

// C^late_c(m); returns kBusy exactly when some active txn has init <= m.
Result<Timestamp> RefCLate(const RefHistory& h, Timestamp m) {
  for (Timestamp init : h.active) {
    if (init <= m) return Status::Busy("reference C^late: active txn");
  }
  Timestamp best = m;
  for (const auto& [init, end] : h.finished) {
    if (init < m && end > m) best = std::max(best, end);
  }
  return best;
}

Result<Timestamp> RefWallComponent(const TstAnalysis& tst,
                                   const std::vector<RefHistory>& history,
                                   ClassId s, ClassId c, Timestamp m) {
  auto ucp = tst.Ucp(s, c);
  if (!ucp.has_value()) return m;  // different weak component: default
  Timestamp value = m;
  for (std::size_t k = 0; k + 1 < ucp->size(); ++k) {
    const ClassId here = (*ucp)[k];
    const ClassId next = (*ucp)[k + 1];
    if (tst.IsCriticalArc(here, next)) {
      value = RefIOld(history[next], value);
    } else {
      HDD_ASSIGN_OR_RETURN(value, RefCLate(history[here], value));
    }
  }
  return value;
}

TEST(TimeWallPropertyTest, WallEqualsOfflineConsistentCut) {
  Rng rng(20260806);
  int checked_walls = 0;
  for (int round = 0; round < 60; ++round) {
    // Random forest over n classes, arcs lower id = higher segment as in
    // the unit tests above: each class either roots a new component or
    // points at a random earlier class.
    const int n = 2 + static_cast<int>(rng.NextBounded(5));
    Digraph g(n);
    for (int c = 1; c < n; ++c) {
      if (rng.NextBounded(5) == 0) continue;  // extra root
      g.AddArc(c, static_cast<NodeId>(rng.NextBounded(
                      static_cast<std::uint64_t>(c))));
    }
    auto tst = TstAnalysis::Create(g);
    if (!tst.ok()) continue;  // not a TST: topology out of scope

    // Random interleaved history: one global timestamp stream, random
    // begins and finishes across classes, some transactions left active.
    std::vector<ClassActivityTable> tables(n);
    std::vector<RefHistory> history(n);
    std::vector<std::pair<ClassId, Timestamp>> open;
    Timestamp now = 0;
    const int steps = 8 + static_cast<int>(rng.NextBounded(24));
    for (int i = 0; i < steps; ++i) {
      now += 1 + rng.NextBounded(3);
      if (!open.empty() && rng.NextBounded(2) == 0) {
        const std::size_t pick = rng.NextBounded(open.size());
        const auto [cls, init] = open[pick];
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
        tables[cls].OnFinish(init, now);
        history[cls].finished.emplace_back(init, now);
      } else {
        const ClassId cls = static_cast<ClassId>(rng.NextBounded(n));
        tables[cls].OnBegin(now);
        open.emplace_back(cls, now);
      }
    }
    for (const auto& [cls, init] : open) history[cls].active.push_back(init);

    ActivityLinkEvaluator eval(&*tst, &tables);
    const ClassId s = PickWallAnchor(*tst);
    for (int trial = 0; trial < 8; ++trial) {
      const Timestamp m = 1 + rng.NextBounded(now + 2);
      std::vector<Timestamp> want(static_cast<std::size_t>(n), m);
      bool ref_busy = false;
      for (ClassId c = 0; c < n; ++c) {
        auto ref = RefWallComponent(*tst, history, s, c, m);
        if (!ref.ok()) {
          ASSERT_EQ(ref.status().code(), StatusCode::kBusy);
          ref_busy = true;
          break;
        }
        want[c] = *ref;
      }
      auto wall = ComputeTimeWall(eval, n, s, m);
      if (ref_busy) {
        EXPECT_EQ(wall.status().code(), StatusCode::kBusy)
            << "round " << round << " m=" << m
            << ": reference busy but wall computed";
        continue;
      }
      ASSERT_TRUE(wall.ok()) << "round " << round << " m=" << m << ": "
                             << wall.status();
      ++checked_walls;
      EXPECT_EQ(wall->bound, want) << "round " << round << " m=" << m;
    }
  }
  // The sweep must actually have exercised computable walls.
  EXPECT_GT(checked_walls, 50);
}

// ---------------------------------------------------------------------------
// End-to-end: a wall released while an update is in flight steers every
// Protocol C read below that update's initiation time, and the cut stays
// put even after the update commits — transactions committing after the
// release can never perturb a wall that has already been served.

TEST(TimeWallEndToEndTest, CommitAfterReleaseCannotPerturbTheCut) {
  PartitionSpec spec;
  spec.segment_names = {"events", "inventory", "orders", "suppliers"};
  spec.transaction_types = {
      {"log_event", 0, {}},
      {"post_inventory", 1, {0}},
      {"reorder", 2, {0, 1}},
      {"supplier_profile", 3, {0, 2}},
  };
  auto schema = HierarchySchema::Create(spec);
  ASSERT_TRUE(schema.ok());
  Database db(4, 2, 0);
  LogicalClock clock;
  HddController cc(&db, &clock, &*schema);
  const GranuleRef event{0, 0};

  // Committed baseline, then a writer caught mid-flight by the release.
  auto setup = cc.Begin({.txn_class = 0});
  ASSERT_TRUE(setup.ok());
  ASSERT_TRUE(cc.Write(*setup, event, 1).ok());
  ASSERT_TRUE(cc.Commit(*setup).ok());

  auto writer = cc.Begin({.txn_class = 0});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(cc.Write(*writer, event, 99).ok());

  auto ro = cc.Begin({.read_only = true});
  ASSERT_TRUE(ro.ok());
  auto before = cc.Read(*ro, event);  // releases + pins a wall
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, 1);  // the cut is below the in-flight writer

  // The writer commits AFTER the wall was released: the pinned reader
  // must keep seeing the old value on re-read.
  ASSERT_TRUE(cc.Commit(*writer).ok());
  auto after = cc.Read(*ro, event);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, 1);
  ASSERT_TRUE(cc.Commit(*ro).ok());

  // A fresh wall, released after the commit, moves the cut forward.
  ASSERT_TRUE(cc.ReleaseNewWall().ok());
  auto fresh = cc.Begin({.read_only = true});
  ASSERT_TRUE(fresh.ok());
  auto value = cc.Read(*fresh, event);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 99);
  ASSERT_TRUE(cc.Commit(*fresh).ok());
}

}  // namespace
}  // namespace hdd
