#include "engine/cost_model.h"

#include <gtest/gtest.h>

namespace hdd {
namespace {

TEST(CostModelTest, PricesEachComponent) {
  CcMetrics metrics;
  metrics.version_reads = 10;
  metrics.versions_created = 5;
  metrics.read_timestamps_written = 4;
  metrics.read_locks_acquired = 6;
  metrics.write_locks_acquired = 2;
  metrics.blocked_reads = 1;
  metrics.blocked_writes = 1;
  metrics.unregistered_reads = 8;
  metrics.commits = 10;
  ExecutorStats stats;
  stats.committed = 10;
  stats.aborted_attempts = 3;

  CostModel model;
  model.read_version_us = 1;
  model.write_version_us = 2;
  model.registration_us = 10;
  model.lock_bookkeeping_us = 0.5;
  model.block_us = 50;
  model.restart_us = 20;
  model.link_eval_us = 0.25;

  CostEstimate estimate = EstimateCost(metrics, stats, model);
  const double expected = 10 * 1.0 + 5 * 2.0 + (4 + 6) * 10.0 + 2 * 0.5 +
                          2 * 50.0 + 3 * 20.0 + 8 * 0.25;
  EXPECT_DOUBLE_EQ(estimate.total_us, expected);
  EXPECT_DOUBLE_EQ(estimate.per_commit_us, expected / 10);
  EXPECT_NEAR(estimate.modeled_tps, 1e6 / (expected / 10), 1e-6);
}

TEST(CostModelTest, ZeroCommitsYieldZeroRates) {
  CcMetrics metrics;
  ExecutorStats stats;
  CostEstimate estimate = EstimateCost(metrics, stats, CostModel{});
  EXPECT_DOUBLE_EQ(estimate.per_commit_us, 0.0);
  EXPECT_DOUBLE_EQ(estimate.modeled_tps, 0.0);
}

TEST(CostModelTest, RegistrationPriceOnlyAffectsRegistrars) {
  CcMetrics registering;
  registering.read_timestamps_written = 100;
  registering.commits = 10;
  CcMetrics free_reader;
  free_reader.unregistered_reads = 100;
  free_reader.commits = 10;
  ExecutorStats stats;
  stats.committed = 10;

  CostModel cheap;
  cheap.registration_us = 1;
  CostModel dear;
  dear.registration_us = 100;

  const double reg_cheap = EstimateCost(registering, stats, cheap).total_us;
  const double reg_dear = EstimateCost(registering, stats, dear).total_us;
  const double free_cheap = EstimateCost(free_reader, stats, cheap).total_us;
  const double free_dear = EstimateCost(free_reader, stats, dear).total_us;
  EXPECT_GT(reg_dear, reg_cheap);
  EXPECT_DOUBLE_EQ(free_cheap, free_dear);
}

}  // namespace
}  // namespace hdd
