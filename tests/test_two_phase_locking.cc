#include "cc/two_phase_locking.h"

#include <gtest/gtest.h>

#include "txn/dependency_graph.h"

namespace hdd {
namespace {

constexpr GranuleRef kY{0, 0};  // an event record (segment D0)
constexpr GranuleRef kX{1, 0};  // an inventory record (segment D1)
constexpr GranuleRef kZ{2, 0};  // an order record (segment D2)

class TwoPhaseLockingTest : public ::testing::Test {
 protected:
  TwoPhaseLockingTest() : db_(3, 2, 0) {}

  Database db_;
  LogicalClock clock_;
};

TEST_F(TwoPhaseLockingTest, ReadYourOwnWrite) {
  TwoPhaseLocking cc(&db_, &clock_);
  auto txn = cc.Begin({});
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(cc.Write(*txn, kX, 42).ok());
  auto value = cc.Read(*txn, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  ASSERT_TRUE(cc.Commit(*txn).ok());
}

TEST_F(TwoPhaseLockingTest, CommittedValueVisibleToLaterTxn) {
  TwoPhaseLocking cc(&db_, &clock_);
  auto t1 = cc.Begin({});
  ASSERT_TRUE(cc.Write(*t1, kX, 7).ok());
  ASSERT_TRUE(cc.Commit(*t1).ok());
  auto t2 = cc.Begin({});
  auto value = cc.Read(*t2, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 7);
  ASSERT_TRUE(cc.Commit(*t2).ok());
}

TEST_F(TwoPhaseLockingTest, AbortRollsBack) {
  TwoPhaseLocking cc(&db_, &clock_);
  auto t1 = cc.Begin({});
  ASSERT_TRUE(cc.Write(*t1, kX, 99).ok());
  ASSERT_TRUE(cc.Abort(*t1).ok());
  auto t2 = cc.Begin({});
  auto value = cc.Read(*t2, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0);
  ASSERT_TRUE(cc.Commit(*t2).ok());
}

TEST_F(TwoPhaseLockingTest, NoWaitConflictIsBusy) {
  TwoPhaseLockingOptions options;
  options.deadlock_policy = DeadlockPolicy::kNoWait;
  TwoPhaseLocking cc(&db_, &clock_, options);
  auto t1 = cc.Begin({});
  ASSERT_TRUE(cc.Write(*t1, kX, 1).ok());
  auto t2 = cc.Begin({});
  auto read = cc.Read(*t2, kX);
  EXPECT_EQ(read.status().code(), StatusCode::kBusy);
  ASSERT_TRUE(cc.Abort(*t2).ok());
  ASSERT_TRUE(cc.Commit(*t1).ok());
}

TEST_F(TwoPhaseLockingTest, ReadLockBlocksWriterNoWait) {
  TwoPhaseLockingOptions options;
  options.deadlock_policy = DeadlockPolicy::kNoWait;
  TwoPhaseLocking cc(&db_, &clock_, options);
  auto reader = cc.Begin({});
  ASSERT_TRUE(cc.Read(*reader, kY).ok());
  auto writer = cc.Begin({});
  // This is exactly what Figure 3 relies on: the registered read *blocks*
  // the concurrent writer.
  EXPECT_EQ(cc.Write(*writer, kY, 5).code(), StatusCode::kBusy);
  ASSERT_TRUE(cc.Abort(*writer).ok());
  ASSERT_TRUE(cc.Commit(*reader).ok());
  EXPECT_GT(cc.metrics().read_locks_acquired.load(), 0u);
}

TEST_F(TwoPhaseLockingTest, Figure3AnomalyWithoutReadLocks) {
  // Paper Figure 3: if the type-3 transaction does not set read locks,
  // serializability is violated. t3 reads the arrival record y before t1
  // inserts it, but reads the inventory x after t2 posted it from y.
  TwoPhaseLockingOptions options;
  options.register_reads = false;
  TwoPhaseLocking cc(&db_, &clock_, options);

  auto t3 = cc.Begin({.txn_class = 2});
  auto y_old = cc.Read(*t3, kY);  // unregistered read: sees 0
  ASSERT_TRUE(y_old.ok());
  EXPECT_EQ(*y_old, 0);

  auto t1 = cc.Begin({.txn_class = 0});
  ASSERT_TRUE(cc.Write(*t1, kY, 1).ok());  // merchandise arrives
  ASSERT_TRUE(cc.Commit(*t1).ok());        // no read lock blocked us

  auto t2 = cc.Begin({.txn_class = 1});
  auto y_new = cc.Read(*t2, kY);
  ASSERT_TRUE(y_new.ok());
  EXPECT_EQ(*y_new, 1);
  ASSERT_TRUE(cc.Write(*t2, kX, *y_new).ok());  // post inventory
  ASSERT_TRUE(cc.Commit(*t2).ok());

  auto x = cc.Read(*t3, kX);  // sees t2's posting
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, 1);
  ASSERT_TRUE(cc.Write(*t3, kZ, *x + *y_old).ok());  // reorder decision
  ASSERT_TRUE(cc.Commit(*t3).ok());

  auto report = CheckSerializability(cc.recorder());
  EXPECT_FALSE(report.serializable);
  EXPECT_EQ(cc.metrics().read_locks_acquired.load(), 0u);
  EXPECT_GT(cc.metrics().unregistered_reads.load(), 0u);
}

TEST_F(TwoPhaseLockingTest, Figure3InterleavingImpossibleWithReadLocks) {
  // Same script with read locks on: t1's write conflicts with t3's
  // registered read, so the anomaly interleaving cannot be produced.
  TwoPhaseLockingOptions options;
  options.deadlock_policy = DeadlockPolicy::kNoWait;
  TwoPhaseLocking cc(&db_, &clock_, options);

  auto t3 = cc.Begin({.txn_class = 2});
  ASSERT_TRUE(cc.Read(*t3, kY).ok());

  auto t1 = cc.Begin({.txn_class = 0});
  EXPECT_EQ(cc.Write(*t1, kY, 1).code(), StatusCode::kBusy);
  ASSERT_TRUE(cc.Abort(*t1).ok());
  ASSERT_TRUE(cc.Commit(*t3).ok());

  auto report = CheckSerializability(cc.recorder());
  EXPECT_TRUE(report.serializable);
}

TEST_F(TwoPhaseLockingTest, Mv2plReadOnlySnapshotWithoutLocks) {
  TwoPhaseLockingOptions options;
  options.snapshot_read_only = true;
  options.name = "mv2pl";
  TwoPhaseLocking cc(&db_, &clock_, options);

  auto t1 = cc.Begin({.txn_class = 0});
  ASSERT_TRUE(cc.Write(*t1, kY, 10).ok());
  ASSERT_TRUE(cc.Commit(*t1).ok());

  auto reader = cc.Begin({.txn_class = kReadOnlyClass, .read_only = true});

  // A later update commits after the reader began...
  auto t2 = cc.Begin({.txn_class = 0});
  ASSERT_TRUE(cc.Write(*t2, kY, 20).ok());
  ASSERT_TRUE(cc.Commit(*t2).ok());

  // ...but the reader still sees its snapshot, without any lock.
  auto value = cc.Read(*reader, kY);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 10);
  ASSERT_TRUE(cc.Commit(*reader).ok());
  EXPECT_EQ(cc.metrics().read_locks_acquired.load(), 0u);
  EXPECT_EQ(cc.metrics().unregistered_reads.load(), 1u);

  auto report = CheckSerializability(cc.recorder());
  EXPECT_TRUE(report.serializable);
}

TEST_F(TwoPhaseLockingTest, Mv2plReadOnlyNeverBlocks) {
  TwoPhaseLockingOptions options;
  options.snapshot_read_only = true;
  TwoPhaseLocking cc(&db_, &clock_, options);

  auto writer = cc.Begin({.txn_class = 0});
  ASSERT_TRUE(cc.Write(*writer, kY, 5).ok());  // X lock held

  auto reader = cc.Begin({.read_only = true});
  auto value = cc.Read(*reader, kY);  // would block under plain 2PL
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0);  // pre-write snapshot
  ASSERT_TRUE(cc.Commit(*reader).ok());
  ASSERT_TRUE(cc.Commit(*writer).ok());
  EXPECT_EQ(cc.metrics().blocked_reads.load(), 0u);
}

TEST_F(TwoPhaseLockingTest, ReadOnlyTxnCannotWrite) {
  TwoPhaseLocking cc(&db_, &clock_);
  auto reader = cc.Begin({.read_only = true});
  EXPECT_EQ(cc.Write(*reader, kX, 1).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(cc.Abort(*reader).ok());
}

TEST_F(TwoPhaseLockingTest, UnknownTxnRejected) {
  TwoPhaseLocking cc(&db_, &clock_);
  TxnDescriptor bogus;
  bogus.id = 12345;
  EXPECT_EQ(cc.Read(bogus, kX).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cc.Commit(bogus).code(), StatusCode::kFailedPrecondition);
}

TEST_F(TwoPhaseLockingTest, InvalidGranuleRejected) {
  TwoPhaseLocking cc(&db_, &clock_);
  auto txn = cc.Begin({});
  EXPECT_EQ(cc.Read(*txn, {9, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cc.Write(*txn, {0, 999}, 0).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(cc.Abort(*txn).ok());
}

TEST_F(TwoPhaseLockingTest, SequentialSchedulesSerializable) {
  TwoPhaseLocking cc(&db_, &clock_);
  for (int i = 0; i < 20; ++i) {
    auto txn = cc.Begin({});
    auto v = cc.Read(*txn, kX);
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(cc.Write(*txn, kX, *v + 1).ok());
    ASSERT_TRUE(cc.Commit(*txn).ok());
  }
  auto final_txn = cc.Begin({});
  auto value = cc.Read(*final_txn, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 20);
  ASSERT_TRUE(cc.Commit(*final_txn).ok());
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
  EXPECT_EQ(cc.metrics().commits.load(), 21u);
}

}  // namespace
}  // namespace hdd
