#include "storage/granule.h"

#include <gtest/gtest.h>

namespace hdd {
namespace {

Version MakeVersion(std::uint64_t order_key, Timestamp wts, TxnId creator,
                    Value value, bool committed) {
  Version v;
  v.order_key = order_key;
  v.wts = wts;
  v.creator = creator;
  v.value = value;
  v.committed = committed;
  return v;
}

TEST(GranuleTest, InitialVersionPresent) {
  Granule g(100);
  EXPECT_EQ(g.num_versions(), 1u);
  const Version* latest = g.LatestCommitted();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->value, 100);
  EXPECT_EQ(latest->wts, kTimestampMin);
  EXPECT_TRUE(latest->committed);
}

TEST(GranuleTest, InsertKeepsOrder) {
  Granule g(0);
  ASSERT_TRUE(g.Insert(MakeVersion(30, 30, 3, 33, true)).ok());
  ASSERT_TRUE(g.Insert(MakeVersion(10, 10, 1, 11, true)).ok());
  ASSERT_TRUE(g.Insert(MakeVersion(20, 20, 2, 22, true)).ok());
  ASSERT_EQ(g.num_versions(), 4u);
  for (std::size_t i = 0; i + 1 < g.versions().size(); ++i) {
    EXPECT_LT(g.versions()[i].order_key, g.versions()[i + 1].order_key);
  }
}

TEST(GranuleTest, DuplicateOrderKeyRejected) {
  Granule g(0);
  ASSERT_TRUE(g.Insert(MakeVersion(5, 5, 1, 1, true)).ok());
  EXPECT_EQ(g.Insert(MakeVersion(5, 5, 2, 2, true)).code(),
            StatusCode::kAlreadyExists);
}

TEST(GranuleTest, LatestCommittedBeforeBound) {
  Granule g(0);
  g.Insert(MakeVersion(10, 10, 1, 11, true));
  g.Insert(MakeVersion(20, 20, 2, 22, true));
  g.Insert(MakeVersion(30, 30, 3, 33, false));  // uncommitted

  const Version* v = g.LatestCommittedBefore(25);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, 22);

  v = g.LatestCommittedBefore(15);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, 11);

  // Uncommitted version 30 is invisible even with a high bound.
  v = g.LatestCommittedBefore(100);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, 22);
}

TEST(GranuleTest, BoundIsExclusive) {
  Granule g(0);
  g.Insert(MakeVersion(10, 10, 1, 11, true));
  const Version* v = g.LatestCommittedBefore(10);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->wts, kTimestampMin);  // initial version, not wts==10
}

TEST(GranuleTest, VersionBeforeSeesUncommitted) {
  Granule g(0);
  g.Insert(MakeVersion(10, 10, 1, 11, false));
  Version* v = g.VersionBefore(15);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->wts, 10u);
  EXPECT_FALSE(v->committed);
}

TEST(GranuleTest, MaxRtsOfVersionsBefore) {
  Granule g(0);
  Version v1 = MakeVersion(10, 10, 1, 0, true);
  v1.rts = 17;
  g.Insert(v1);
  Version v2 = MakeVersion(20, 20, 2, 0, true);
  v2.rts = 25;
  g.Insert(v2);
  EXPECT_EQ(g.MaxRtsOfVersionsBefore(15), 17u);
  EXPECT_EQ(g.MaxRtsOfVersionsBefore(30), 25u);
  EXPECT_EQ(g.MaxRtsOfVersionsBefore(5), kTimestampMin);
}

TEST(GranuleTest, NextWtsAfter) {
  Granule g(0);
  g.Insert(MakeVersion(10, 10, 1, 0, true));
  g.Insert(MakeVersion(20, 20, 2, 0, true));
  EXPECT_EQ(g.NextWtsAfter(5), 10u);
  EXPECT_EQ(g.NextWtsAfter(10), 20u);
  EXPECT_EQ(g.NextWtsAfter(20), kTimestampInfinity);
}

TEST(GranuleTest, RemoveAbortedVersion) {
  Granule g(0);
  g.Insert(MakeVersion(10, 10, 1, 0, false));
  EXPECT_TRUE(g.Remove(10).ok());
  EXPECT_EQ(g.num_versions(), 1u);
  EXPECT_EQ(g.Remove(10).code(), StatusCode::kNotFound);
}

TEST(GranuleTest, MarkCommitted) {
  Granule g(0);
  g.Insert(MakeVersion(10, 10, 1, 42, false));
  EXPECT_EQ(g.LatestCommittedBefore(100)->value, 0);
  EXPECT_TRUE(g.MarkCommitted(10).ok());
  EXPECT_EQ(g.LatestCommittedBefore(100)->value, 42);
  EXPECT_EQ(g.MarkCommitted(99).code(), StatusCode::kNotFound);
}

TEST(GranuleTest, FindByOrderKey) {
  Granule g(0);
  g.Insert(MakeVersion(10, 10, 7, 1, true));
  ASSERT_NE(g.Find(10), nullptr);
  EXPECT_EQ(g.Find(10)->creator, 7u);
  EXPECT_EQ(g.Find(11), nullptr);
}

TEST(GranulePruneTest, KeepsSnapshotBase) {
  Granule g(0);
  g.Insert(MakeVersion(10, 10, 1, 11, true));
  g.Insert(MakeVersion(20, 20, 2, 22, true));
  g.Insert(MakeVersion(30, 30, 3, 33, true));
  // Horizon 25: base is version 20; versions 0 and 10 go away.
  EXPECT_EQ(g.Prune(25), 2u);
  EXPECT_EQ(g.num_versions(), 2u);
  ASSERT_NE(g.LatestCommittedBefore(25), nullptr);
  EXPECT_EQ(g.LatestCommittedBefore(25)->value, 22);
  EXPECT_EQ(g.LatestCommittedBefore(100)->value, 33);
}

TEST(GranulePruneTest, UncommittedRetained) {
  Granule g(0);
  g.Insert(MakeVersion(10, 10, 1, 11, false));
  g.Insert(MakeVersion(20, 20, 2, 22, true));
  // Base is version 20 (committed); the uncommitted version 10 survives.
  EXPECT_EQ(g.Prune(100), 1u);  // only initial version removed
  EXPECT_EQ(g.num_versions(), 2u);
  EXPECT_NE(g.Find(10), nullptr);
}

TEST(GranulePruneTest, NoOpWithoutBase) {
  Granule g(0);
  g.Insert(MakeVersion(10, 10, 1, 11, true));
  EXPECT_EQ(g.Prune(kTimestampMin), 0u);  // nothing below wts 0
  EXPECT_EQ(g.num_versions(), 2u);
}

TEST(GranulePruneTest, IdempotentAtSameHorizon) {
  Granule g(0);
  g.Insert(MakeVersion(10, 10, 1, 11, true));
  g.Insert(MakeVersion(20, 20, 2, 22, true));
  EXPECT_GT(g.Prune(25), 0u);
  EXPECT_EQ(g.Prune(25), 0u);
}

}  // namespace
}  // namespace hdd
