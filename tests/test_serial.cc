#include "cc/serial.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "txn/dependency_graph.h"

namespace hdd {
namespace {

constexpr GranuleRef kX{0, 0};

class SerialTest : public ::testing::Test {
 protected:
  SerialTest() : db_(1, 2, 0) {}

  Database db_;
  LogicalClock clock_;
};

TEST_F(SerialTest, BasicLifecycle) {
  SerialController cc(&db_, &clock_);
  auto txn = cc.Begin({});
  ASSERT_TRUE(cc.Write(*txn, kX, 5).ok());
  auto value = cc.Read(*txn, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 5);
  ASSERT_TRUE(cc.Commit(*txn).ok());
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST_F(SerialTest, SecondBeginBlocksUntilFirstFinishes) {
  SerialController cc(&db_, &clock_);
  auto first = cc.Begin({});
  std::atomic<bool> second_started{false};
  std::thread blocked([&] {
    auto second = cc.Begin({});
    second_started = true;
    (void)cc.Commit(*second);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_started.load());
  ASSERT_TRUE(cc.Commit(*first).ok());
  blocked.join();
  EXPECT_TRUE(second_started.load());
}

TEST_F(SerialTest, AbortReleasesTheTicket) {
  SerialController cc(&db_, &clock_);
  auto first = cc.Begin({});
  ASSERT_TRUE(cc.Write(*first, kX, 9).ok());
  ASSERT_TRUE(cc.Abort(*first).ok());
  auto second = cc.Begin({});  // must not block
  auto value = cc.Read(*second, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0);  // aborted write rolled back
  ASSERT_TRUE(cc.Commit(*second).ok());
}

TEST_F(SerialTest, NoSynchronizationWorkCounted) {
  SerialController cc(&db_, &clock_);
  for (int i = 0; i < 5; ++i) {
    auto txn = cc.Begin({});
    ASSERT_TRUE(cc.Read(*txn, kX).ok());
    ASSERT_TRUE(cc.Write(*txn, kX, i).ok());
    ASSERT_TRUE(cc.Commit(*txn).ok());
  }
  EXPECT_EQ(cc.metrics().read_locks_acquired.load(), 0u);
  EXPECT_EQ(cc.metrics().read_timestamps_written.load(), 0u);
  EXPECT_EQ(cc.metrics().aborts.load(), 0u);
  EXPECT_EQ(cc.metrics().commits.load(), 5u);
}

TEST_F(SerialTest, ReadOnlyCannotWrite) {
  SerialController cc(&db_, &clock_);
  auto txn = cc.Begin({.read_only = true});
  EXPECT_EQ(cc.Write(*txn, kX, 1).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(cc.Abort(*txn).ok());
}

}  // namespace
}  // namespace hdd
