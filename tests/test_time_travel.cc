// AS-OF (time travel) reads over released walls: the multi-version store
// retains consistent cuts that read-only transactions can revisit until
// garbage collection reclaims them.

#include <gtest/gtest.h>

#include <memory>

#include "engine/inventory_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

constexpr GranuleRef kEvent{0, 0};

class TimeTravelTest : public ::testing::Test {
 protected:
  TimeTravelTest() : db_(4, 2, 0) {
    auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
    EXPECT_TRUE(schema.ok());
    schema_ = std::make_unique<HierarchySchema>(std::move(schema).value());
    cc_ = std::make_unique<HddController>(&db_, &clock_, schema_.get());
  }

  void WriteEvent(Value value) {
    auto txn = cc_->Begin({.txn_class = 0});
    ASSERT_TRUE(cc_->Write(*txn, kEvent, value).ok());
    ASSERT_TRUE(cc_->Commit(*txn).ok());
  }

  Value ReadAsOf(int wall) {
    auto txn = cc_->Begin({.read_only = true, .as_of_wall = wall});
    EXPECT_TRUE(txn.ok()) << txn.status();
    auto value = cc_->Read(*txn, kEvent);
    EXPECT_TRUE(value.ok());
    EXPECT_TRUE(cc_->Commit(*txn).ok());
    return value.ok() ? *value : -1;
  }

  Database db_;
  LogicalClock clock_;
  std::unique_ptr<HierarchySchema> schema_;
  std::unique_ptr<HddController> cc_;
};

TEST_F(TimeTravelTest, ReadsHistoricalCuts) {
  WriteEvent(1);
  ASSERT_TRUE(cc_->ReleaseNewWall().ok());  // wall 0: sees 1
  WriteEvent(2);
  ASSERT_TRUE(cc_->ReleaseNewWall().ok());  // wall 1: sees 2
  WriteEvent(3);
  ASSERT_TRUE(cc_->ReleaseNewWall().ok());  // wall 2: sees 3

  EXPECT_EQ(ReadAsOf(0), 1);
  EXPECT_EQ(ReadAsOf(1), 2);
  EXPECT_EQ(ReadAsOf(2), 3);
  // Revisiting an older cut after a newer one works too.
  EXPECT_EQ(ReadAsOf(0), 1);
  EXPECT_TRUE(CheckSerializability(cc_->recorder()).serializable);
}

TEST_F(TimeTravelTest, UnknownWallRejected) {
  auto txn = cc_->Begin({.read_only = true, .as_of_wall = 5});
  EXPECT_FALSE(txn.ok());
  EXPECT_EQ(txn.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TimeTravelTest, CollectedWallRejected) {
  WriteEvent(1);
  ASSERT_TRUE(cc_->ReleaseNewWall().ok());  // wall 0
  WriteEvent(2);
  ASSERT_TRUE(cc_->ReleaseNewWall().ok());  // wall 1 (latest)
  // GC with the latest wall unpins wall 0's versions.
  (void)cc_->CollectGarbage();
  auto txn = cc_->Begin({.read_only = true, .as_of_wall = 0});
  EXPECT_FALSE(txn.ok());
  EXPECT_EQ(txn.status().code(), StatusCode::kFailedPrecondition);
  // The latest wall is still fine.
  EXPECT_EQ(ReadAsOf(1), 2);
}

TEST_F(TimeTravelTest, AsOfCannotCombineWithHostedScope) {
  ASSERT_TRUE(cc_->ReleaseNewWall().ok());
  auto txn = cc_->Begin(
      {.read_only = true, .read_scope = {0}, .as_of_wall = 0});
  EXPECT_FALSE(txn.ok());
  EXPECT_EQ(txn.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TimeTravelTest, AsOfIgnoredForUpdateTxns) {
  // as_of_wall applies only to read-only transactions; updates ignore it.
  ASSERT_TRUE(cc_->ReleaseNewWall().ok());
  auto txn = cc_->Begin({.txn_class = 0, .as_of_wall = 0});
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(cc_->Write(*txn, kEvent, 9).ok());
  ASSERT_TRUE(cc_->Commit(*txn).ok());
}

TEST_F(TimeTravelTest, HistoricalCutIsConsistentAcrossSegments) {
  // Write event=5 and post inventory=5 before the wall; then change both.
  WriteEvent(5);
  {
    auto post = cc_->Begin({.txn_class = 1});
    auto ev = cc_->Read(*post, kEvent);
    ASSERT_TRUE(ev.ok());
    ASSERT_TRUE(cc_->Write(*post, {1, 0}, *ev).ok());
    ASSERT_TRUE(cc_->Commit(*post).ok());
  }
  ASSERT_TRUE(cc_->ReleaseNewWall().ok());  // wall 0

  WriteEvent(7);
  {
    auto post = cc_->Begin({.txn_class = 1});
    auto ev = cc_->Read(*post, kEvent);
    ASSERT_TRUE(ev.ok());
    ASSERT_TRUE(cc_->Write(*post, {1, 0}, *ev).ok());
    ASSERT_TRUE(cc_->Commit(*post).ok());
  }

  auto txn = cc_->Begin({.read_only = true, .as_of_wall = 0});
  ASSERT_TRUE(txn.ok());
  auto ev = cc_->Read(*txn, kEvent);
  auto inv = cc_->Read(*txn, {1, 0});
  ASSERT_TRUE(ev.ok());
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(*ev, 5);
  EXPECT_EQ(*inv, 5);  // the cut is consistent: both from the same era
  ASSERT_TRUE(cc_->Commit(*txn).ok());
  EXPECT_TRUE(CheckSerializability(cc_->recorder()).serializable);
}

}  // namespace
}  // namespace hdd
