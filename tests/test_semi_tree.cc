#include "graph/semi_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hdd {
namespace {

// The paper's Figure 5 transitive semi-tree: a chain with transitively
// induced shortcuts plus a side branch.
Digraph Figure5Like() {
  // Reduction shape:  4 -> 3 -> 2 -> 1   and   5 -> 3.
  Digraph g(6);  // node 0 unused spare to exercise non-contiguity
  g.AddArc(4, 3);
  g.AddArc(3, 2);
  g.AddArc(2, 1);
  g.AddArc(5, 3);
  // Transitively induced arcs.
  g.AddArc(4, 2);
  g.AddArc(4, 1);
  g.AddArc(5, 2);
  return g;
}

TEST(SemiTreeTest, ChainIsSemiTree) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  EXPECT_TRUE(IsSemiTree(g));
}

TEST(SemiTreeTest, SharedSinkIsSemiTree) {
  // Two classes reading one top segment: 1 -> 0 <- 2 (undirected tree).
  Digraph g(3);
  g.AddArc(1, 0);
  g.AddArc(2, 0);
  EXPECT_TRUE(IsSemiTree(g));
}

TEST(SemiTreeTest, DiamondIsNotSemiTree) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.AddArc(1, 3);
  g.AddArc(2, 3);
  EXPECT_FALSE(IsSemiTree(g));
}

TEST(TstTest, Figure5GraphIsTst) {
  EXPECT_TRUE(IsTransitiveSemiTree(Figure5Like()));
}

TEST(TstTest, DiamondReductionIsNotTst) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.AddArc(1, 3);
  g.AddArc(2, 3);
  EXPECT_FALSE(IsTransitiveSemiTree(g));
}

TEST(TstTest, DirectedCycleIsNotTst) {
  Digraph g(2);
  g.AddArc(0, 1);
  g.AddArc(1, 0);
  EXPECT_FALSE(IsTransitiveSemiTree(g));
}

TEST(TstTest, ShortcutsDoNotDisqualify) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(0, 2);  // transitively induced
  EXPECT_TRUE(IsTransitiveSemiTree(g));
  EXPECT_FALSE(IsSemiTree(g));  // but it is not itself a semi-tree
}

TEST(TstAnalysisTest, RejectsIllegalGraphs) {
  Digraph diamond(4);
  diamond.AddArc(0, 1);
  diamond.AddArc(0, 2);
  diamond.AddArc(1, 3);
  diamond.AddArc(2, 3);
  EXPECT_FALSE(TstAnalysis::Create(diamond).ok());

  Digraph cyclic(2);
  cyclic.AddArc(0, 1);
  cyclic.AddArc(1, 0);
  EXPECT_FALSE(TstAnalysis::Create(cyclic).ok());
}

TEST(TstAnalysisTest, CriticalArcsAreReductionArcs) {
  auto analysis = TstAnalysis::Create(Figure5Like());
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->IsCriticalArc(4, 3));
  EXPECT_TRUE(analysis->IsCriticalArc(3, 2));
  EXPECT_TRUE(analysis->IsCriticalArc(5, 3));
  // Induced arcs are not critical.
  EXPECT_FALSE(analysis->IsCriticalArc(4, 2));
  EXPECT_FALSE(analysis->IsCriticalArc(4, 1));
}

TEST(TstAnalysisTest, CriticalPathFollowsReduction) {
  auto analysis = TstAnalysis::Create(Figure5Like());
  ASSERT_TRUE(analysis.ok());
  auto path = analysis->CriticalPath(4, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{4, 3, 2, 1}));
}

TEST(TstAnalysisTest, CriticalPathToSelf) {
  auto analysis = TstAnalysis::Create(Figure5Like());
  ASSERT_TRUE(analysis.ok());
  auto path = analysis->CriticalPath(3, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{3}));
}

TEST(TstAnalysisTest, NoPathAcrossBranches) {
  auto analysis = TstAnalysis::Create(Figure5Like());
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->CriticalPath(4, 5).has_value());
  EXPECT_FALSE(analysis->CriticalPath(5, 4).has_value());
  EXPECT_FALSE(analysis->CriticalPath(1, 4).has_value());  // wrong direction
}

TEST(TstAnalysisTest, HigherThanPartialOrder) {
  auto analysis = TstAnalysis::Create(Figure5Like());
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->Higher(1, 4));   // T_1 higher than T_4
  EXPECT_TRUE(analysis->Higher(3, 5));
  EXPECT_TRUE(analysis->Higher(2, 4));
  EXPECT_FALSE(analysis->Higher(4, 1));
  EXPECT_FALSE(analysis->Higher(4, 5));  // incomparable branches
  EXPECT_FALSE(analysis->Higher(3, 3));  // irreflexive
}

TEST(TstAnalysisTest, UcpCrossesBranches) {
  auto analysis = TstAnalysis::Create(Figure5Like());
  ASSERT_TRUE(analysis.ok());
  auto ucp = analysis->Ucp(4, 5);
  ASSERT_TRUE(ucp.has_value());
  EXPECT_EQ(*ucp, (std::vector<NodeId>{4, 3, 5}));
}

TEST(TstAnalysisTest, UcpDisconnected) {
  auto analysis = TstAnalysis::Create(Figure5Like());
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->Ucp(0, 4).has_value());  // node 0 is isolated
}

// Brute-force cross-check of the semi-tree definition: "at most one
// undirected path between any pair of nodes". Enumerates all undirected
// simple paths on small random digraphs and compares with IsSemiTree.
namespace brute {

int CountUndirectedPaths(const hdd::Digraph& g, NodeId from, NodeId to,
                         std::vector<bool>& visited) {
  if (from == to) return 1;
  visited[from] = true;
  int count = 0;
  auto try_step = [&](NodeId next) {
    if (!visited[next]) count += CountUndirectedPaths(g, next, to, visited);
  };
  for (NodeId v : g.OutNeighbors(from)) try_step(v);
  for (NodeId v : g.InNeighbors(from)) try_step(v);
  visited[from] = false;
  return count;
}

bool IsSemiTreeBruteForce(const hdd::Digraph& g) {
  // Antiparallel arcs are two one-hop undirected paths.
  for (const auto& [u, v] : g.Arcs()) {
    if (g.HasArc(v, u)) return false;
  }
  for (NodeId a = 0; a < g.num_nodes(); ++a) {
    for (NodeId b = a + 1; b < g.num_nodes(); ++b) {
      std::vector<bool> visited(g.num_nodes(), false);
      if (CountUndirectedPaths(g, a, b, visited) > 1) return false;
    }
  }
  return true;
}

}  // namespace brute

TEST(SemiTreePropertyTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(314);
  int semi_trees = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const int n = static_cast<int>(rng.NextInRange(2, 6));
    Digraph g(n);
    const int arcs = static_cast<int>(rng.NextInRange(0, 7));
    for (int i = 0; i < arcs; ++i) {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (u != v) g.AddArc(u, v);
    }
    const bool fast = IsSemiTree(g);
    const bool brute_force = brute::IsSemiTreeBruteForce(g);
    ASSERT_EQ(fast, brute_force)
        << "disagreement on trial " << trial << ":\n"
        << g.ToDot();
    semi_trees += fast;
  }
  // Sanity: the generator produced both kinds.
  EXPECT_GT(semi_trees, 10);
  EXPECT_LT(semi_trees, 290);
}

}  // namespace
}  // namespace hdd
