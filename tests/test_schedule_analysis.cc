#include "txn/schedule_analysis.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"

namespace hdd {
namespace {

constexpr GranuleRef kX{0, 0};
constexpr GranuleRef kY{0, 1};

class Builder {
 public:
  Builder& Read(TxnId t, GranuleRef g, std::uint64_t v) {
    recorder_.RecordRead(t, g, v);
    return *this;
  }
  Builder& Write(TxnId t, GranuleRef g, std::uint64_t v) {
    recorder_.RecordWrite(t, g, v);
    return *this;
  }
  Builder& Commit(TxnId t) {
    recorder_.RecordOutcome(t, TxnState::kCommitted);
    return *this;
  }
  const ScheduleRecorder& recorder() const { return recorder_; }

 private:
  ScheduleRecorder recorder_;
};

TEST(IsSerialTest, SerialAndInterleaved) {
  Builder serial;
  serial.Read(1, kX, 0).Write(1, kX, 1).Read(2, kX, 1).Commit(1).Commit(2);
  EXPECT_TRUE(IsSerialSchedule(serial.recorder().steps()));

  Builder interleaved;
  interleaved.Read(1, kX, 0).Read(2, kX, 0).Write(1, kX, 1);
  EXPECT_FALSE(IsSerialSchedule(interleaved.recorder().steps()));
}

TEST(IsSerialTest, EmptyAndSingle) {
  EXPECT_TRUE(IsSerialSchedule({}));
  Builder b;
  b.Read(1, kX, 0);
  EXPECT_TRUE(IsSerialSchedule(b.recorder().steps()));
}

TEST(EquivalenceTest, ReorderedIndependentStepsAreEquivalent) {
  // t1 and t2 touch disjoint granules: any interleaving is equivalent.
  Builder a, b;
  a.Write(1, kX, 1).Write(2, kY, 1).Commit(1).Commit(2);
  b.Write(2, kY, 1).Write(1, kX, 1).Commit(1).Commit(2);
  EXPECT_TRUE(EquivalentSchedules(
      a.recorder().steps(), a.recorder().outcomes(), b.recorder().steps(),
      b.recorder().outcomes()));
}

TEST(EquivalenceTest, DifferentReadsFromNotEquivalent) {
  Builder a, b;
  a.Write(1, kX, 1).Read(2, kX, 1).Commit(1).Commit(2);  // t2 reads t1
  b.Write(1, kX, 1).Read(2, kX, 0).Commit(1).Commit(2);  // t2 reads initial
  EXPECT_FALSE(EquivalentSchedules(
      a.recorder().steps(), a.recorder().outcomes(), b.recorder().steps(),
      b.recorder().outcomes()));
}

TEST(EquivalenceTest, DifferentTxnSetsNotEquivalent) {
  Builder a, b;
  a.Write(1, kX, 1).Commit(1);
  b.Write(1, kX, 1).Write(2, kY, 1).Commit(1).Commit(2);
  EXPECT_FALSE(EquivalentSchedules(
      a.recorder().steps(), a.recorder().outcomes(), b.recorder().steps(),
      b.recorder().outcomes()));
}

TEST(SerializeTest, ProducesSerialEquivalentSchedule) {
  // A (serializable) interleaving; serialize along the checker's order
  // and confirm the result is serial AND equivalent per the paper's
  // definition — i.e. the checker's order is a genuine witness.
  Builder b;
  b.Write(1, kX, 1)
      .Read(2, kX, 1)
      .Write(2, kY, 2)
      .Read(3, kY, 2)
      .Commit(1)
      .Commit(2)
      .Commit(3);
  auto report = CheckSerializability(b.recorder());
  ASSERT_TRUE(report.serializable);
  auto serialized =
      SerializeSchedule(b.recorder().steps(), b.recorder().outcomes(),
                        report.serial_order);
  EXPECT_TRUE(IsSerialSchedule(serialized));
  EXPECT_TRUE(EquivalentSchedules(
      b.recorder().steps(), b.recorder().outcomes(), serialized,
      b.recorder().outcomes()));
  EXPECT_TRUE(IsMonoversionConsistent(serialized));
}

TEST(SerializeTest, DropsUncommittedSteps) {
  Builder b;
  b.Write(1, kX, 1).Write(2, kY, 2).Commit(1);  // t2 never commits
  auto serialized = SerializeSchedule(
      b.recorder().steps(), b.recorder().outcomes(), {1});
  ASSERT_EQ(serialized.size(), 1u);
  EXPECT_EQ(serialized[0].txn, 1u);
}

// End-to-end: every controller's committed schedule serializes into an
// equivalent serial schedule via the checker's order (the paper's §2
// round trip), under real concurrency.
class SerializationRoundTripTest
    : public ::testing::TestWithParam<ControllerKind> {};

TEST_P(SerializationRoundTripTest, CheckerOrderIsAWitness) {
  InventoryWorkloadParams params;
  params.items = 4;
  InventoryWorkload workload(params);
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  auto cc = CreateController(GetParam(), db.get(), &clock, &*schema);
  ExecutorOptions options;
  options.num_threads = 3;
  (void)RunWorkload(*cc, workload, 150, options);

  auto report = CheckSerializability(cc->recorder());
  ASSERT_TRUE(report.serializable);
  auto serialized =
      SerializeSchedule(cc->recorder().steps(), cc->recorder().outcomes(),
                        report.serial_order);
  EXPECT_TRUE(IsSerialSchedule(serialized));
  EXPECT_TRUE(EquivalentSchedules(
      cc->recorder().steps(), cc->recorder().outcomes(), serialized,
      cc->recorder().outcomes()))
      << ControllerKindName(GetParam());
  // The strongest witness: serially replayed, every read returns the
  // serially-latest write — one-copy serializability.
  EXPECT_TRUE(IsMonoversionConsistent(serialized))
      << ControllerKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SerializationRoundTripTest,
    ::testing::ValuesIn(AllControllerKinds()),
    [](const ::testing::TestParamInfo<ControllerKind>& info) {
      std::string name(ControllerKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(GranuleStatsTest, CountsAccesses) {
  Builder b;
  b.Read(1, kX, 0).Write(1, kX, 1).Read(2, kX, 1).Write(3, kY, 2);
  auto stats = AnalyzeGranules(b.recorder().steps());
  EXPECT_EQ(stats[kX].reads, 2u);
  EXPECT_EQ(stats[kX].writes, 1u);
  EXPECT_EQ(stats[kX].distinct_txns, 2u);
  EXPECT_EQ(stats[kY].writes, 1u);
  EXPECT_EQ(stats[kY].distinct_txns, 1u);
}

TEST(ExplainCycleTest, NarratesReadsFrom) {
  Builder b;
  b.Write(1, kX, 1).Read(2, kX, 1).Write(2, kY, 2).Read(1, kY, 2);
  b.Commit(1).Commit(2);
  auto report = CheckSerializability(b.recorder());
  ASSERT_FALSE(report.serializable);
  auto lines = ExplainCycle(b.recorder().steps(), b.recorder().outcomes(),
                            report.witness_cycle);
  ASSERT_GE(lines.size(), 2u);
  bool mentions_read = false;
  for (const std::string& line : lines) {
    if (line.find("read version") != std::string::npos) {
      mentions_read = true;
    }
  }
  EXPECT_TRUE(mentions_read);
}

// Property: serializing a randomly generated conflict-light schedule by
// its checker order is always serial + equivalent.
TEST(SerializeTest, RandomRoundTrips) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    Builder b;
    // Writers write disjoint granules; readers read random committed
    // versions in causal order — yields serializable schedules.
    std::vector<std::uint64_t> latest(4, 0);
    for (TxnId t = 1; t <= 6; ++t) {
      const std::uint32_t g =
          static_cast<std::uint32_t>(rng.NextBounded(4));
      b.Read(t, {0, g}, latest[g]);
      b.Write(t, {0, g}, t * 10);
      latest[g] = t * 10;
      b.Commit(t);
    }
    auto report = CheckSerializability(b.recorder());
    ASSERT_TRUE(report.serializable);
    auto serialized =
        SerializeSchedule(b.recorder().steps(), b.recorder().outcomes(),
                          report.serial_order);
    EXPECT_TRUE(IsSerialSchedule(serialized));
    EXPECT_TRUE(EquivalentSchedules(
        b.recorder().steps(), b.recorder().outcomes(), serialized,
        b.recorder().outcomes()));
    EXPECT_TRUE(IsMonoversionConsistent(serialized));
  }
}

TEST(MonoversionTest, DetectsStaleRead) {
  Builder b;
  // Serial order t1 then t2, but t2 reads the initial version although t1
  // wrote version 1 before it: not a one-copy execution.
  b.Write(1, kX, 1).Commit(1).Read(2, kX, 0).Commit(2);
  EXPECT_FALSE(IsMonoversionConsistent(b.recorder().steps()));
}

TEST(MonoversionTest, AcceptsFreshReads) {
  Builder b;
  b.Read(1, kX, 0).Write(1, kX, 1).Read(1, kX, 1).Commit(1);
  b.Read(2, kX, 1).Write(2, kX, 2).Commit(2);
  EXPECT_TRUE(IsMonoversionConsistent(b.recorder().steps()));
}

}  // namespace
}  // namespace hdd
