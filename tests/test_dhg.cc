#include "graph/dhg.h"

#include <gtest/gtest.h>

namespace hdd {
namespace {

// The paper's Figure 2 retail inventory application:
//   D0 = event records (sales, sales-modification, merchandise-arrival)
//   D1 = inventory records
//   D2 = merchandise-on-order / reorder records
//   D3 = supplier profiles (the §1.2.2 extension)
// Type 1 writes D0; type 2 writes D1 reading D0; type 3 writes D2 reading
// D0 and D1; type 4 writes D3 reading D0 and D2.
PartitionSpec InventorySpec() {
  PartitionSpec spec;
  spec.segment_names = {"events", "inventory", "orders", "suppliers"};
  spec.transaction_types = {
      {"log_event", 0, {}},
      {"post_inventory", 1, {0}},
      {"reorder", 2, {0, 1}},
      {"supplier_profile", 3, {0, 2}},
  };
  return spec;
}

TEST(BuildDhgTest, InventoryArcs) {
  auto dhg = BuildDhg(InventorySpec());
  ASSERT_TRUE(dhg.ok());
  EXPECT_TRUE(dhg->HasArc(1, 0));
  EXPECT_TRUE(dhg->HasArc(2, 0));
  EXPECT_TRUE(dhg->HasArc(2, 1));
  EXPECT_TRUE(dhg->HasArc(3, 0));
  EXPECT_TRUE(dhg->HasArc(3, 2));
  EXPECT_EQ(dhg->num_arcs(), 5u);
}

TEST(BuildDhgTest, RootOutOfRange) {
  PartitionSpec spec;
  spec.segment_names = {"a"};
  spec.transaction_types = {{"bad", 3, {}}};
  EXPECT_FALSE(BuildDhg(spec).ok());
}

TEST(BuildDhgTest, ReadSegmentOutOfRange) {
  PartitionSpec spec;
  spec.segment_names = {"a"};
  spec.transaction_types = {{"bad", 0, {5}}};
  EXPECT_FALSE(BuildDhg(spec).ok());
}

TEST(BuildDhgTest, SelfReadProducesNoArc) {
  PartitionSpec spec;
  spec.segment_names = {"a", "b"};
  spec.transaction_types = {{"t", 0, {0, 1}}};
  auto dhg = BuildDhg(spec);
  ASSERT_TRUE(dhg.ok());
  EXPECT_EQ(dhg->num_arcs(), 1u);
  EXPECT_TRUE(dhg->HasArc(0, 1));
}

TEST(HierarchySchemaTest, InventoryIsLegal) {
  auto schema = HierarchySchema::Create(InventorySpec());
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->num_segments(), 4);
  EXPECT_EQ(schema->segment_name(1), "inventory");
  // Critical (reduction) arcs: 1->0, 2->1, 3->2. Arcs 2->0 and 3->0 are
  // transitively induced... 3->0 requires a path 3 -> 2 -> 1 -> 0.
  EXPECT_TRUE(schema->tst().IsCriticalArc(1, 0));
  EXPECT_TRUE(schema->tst().IsCriticalArc(2, 1));
  EXPECT_TRUE(schema->tst().IsCriticalArc(3, 2));
  EXPECT_FALSE(schema->tst().IsCriticalArc(2, 0));
  EXPECT_FALSE(schema->tst().IsCriticalArc(3, 0));
}

TEST(HierarchySchemaTest, HigherThanMatchesPaper) {
  auto schema = HierarchySchema::Create(InventorySpec());
  ASSERT_TRUE(schema.ok());
  // events is the highest segment: every class's reads point up to it.
  EXPECT_TRUE(schema->tst().Higher(0, 1));
  EXPECT_TRUE(schema->tst().Higher(0, 2));
  EXPECT_TRUE(schema->tst().Higher(0, 3));
  EXPECT_TRUE(schema->tst().Higher(1, 3));
  EXPECT_FALSE(schema->tst().Higher(3, 0));
}

TEST(HierarchySchemaTest, DiamondReadPatternRejected) {
  // Two mid-level segments both derived from events, and a class reading
  // both mid-level segments without the critical-path structure:
  //   1 -> 0, 2 -> 0, 3 -> 1, 3 -> 2 has a diamond reduction.
  PartitionSpec spec;
  spec.segment_names = {"events", "mid_a", "mid_b", "low"};
  spec.transaction_types = {
      {"a", 1, {0}},
      {"b", 2, {0}},
      {"c", 3, {1, 2}},
  };
  auto schema = HierarchySchema::Create(spec);
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(HierarchySchemaTest, MutualReadWriteRejected) {
  // Two classes writing each other's read segments -> antiparallel arcs.
  PartitionSpec spec;
  spec.segment_names = {"a", "b"};
  spec.transaction_types = {
      {"t1", 0, {1}},
      {"t2", 1, {0}},
  };
  EXPECT_FALSE(HierarchySchema::Create(spec).ok());
}

TEST(ExplainIllegalDhgTest, NamesTheDiamond) {
  PartitionSpec spec;
  spec.segment_names = {"events", "mid_a", "mid_b", "low"};
  spec.transaction_types = {
      {"a", 1, {0}},
      {"b", 2, {0}},
      {"c", 3, {1, 2}},
  };
  auto schema = HierarchySchema::Create(spec);
  ASSERT_FALSE(schema.ok());
  const std::string& message = schema.status().message();
  EXPECT_NE(message.find("diamond"), std::string::npos) << message;
  EXPECT_NE(message.find("events"), std::string::npos) << message;
}

TEST(ExplainIllegalDhgTest, NamesTheCycle) {
  PartitionSpec spec;
  spec.segment_names = {"a", "b"};
  spec.transaction_types = {
      {"t1", 0, {1}},
      {"t2", 1, {0}},
  };
  auto schema = HierarchySchema::Create(spec);
  ASSERT_FALSE(schema.ok());
  const std::string& message = schema.status().message();
  EXPECT_NE(message.find("mutually derived"), std::string::npos) << message;
  EXPECT_NE(message.find("a -> b"), std::string::npos) << message;
}

TEST(ExplainIllegalDhgTest, EmptyForLegalGraph) {
  auto dhg = BuildDhg(InventorySpec());
  ASSERT_TRUE(dhg.ok());
  EXPECT_TRUE(ExplainIllegalDhg(*dhg).empty());
}

TEST(HierarchySchemaTest, ClassOfTypeIsRootSegment) {
  auto schema = HierarchySchema::Create(InventorySpec());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->ClassOfType(0), 0);
  EXPECT_EQ(schema->ClassOfType(2), 2);
}

TEST(HierarchySchemaTest, MultipleTypesSharingRootAreOneClass) {
  PartitionSpec spec;
  spec.segment_names = {"events", "derived"};
  spec.transaction_types = {
      {"sale", 0, {}},
      {"arrival", 0, {}},
      {"post", 1, {0}},
  };
  auto schema = HierarchySchema::Create(spec);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->ClassOfType(0), schema->ClassOfType(1));
}

}  // namespace
}  // namespace hdd
