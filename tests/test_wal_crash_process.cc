// On-disk kill -9 smoke test: a forked child logs transactions through
// FileWalStorage with per-commit fsync, records every ACKED commit in a
// separately fsynced side file, then dies by SIGKILL mid-stream. The
// parent recovers the WAL directory and checks the durability contract:
// every acknowledged commit is recovered. (A kill -9 only discards
// process state, not the page cache, so this exercises the real-file
// recovery path — the harsher lost-buffer model is covered by
// SimWalStorage in test_wal_format.cc and the sim sweeps.)

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "storage/database.h"
#include "wal/recovery.h"
#include "wal/wal_manager.h"
#include "wal/wal_storage.h"

namespace hdd {
namespace {

constexpr int kSegments = 2;
constexpr std::uint32_t kGranules = 2;
constexpr TxnId kAckedTxns = 40;

// Child body: never returns. Logs kAckedTxns committed transactions,
// appending each acked id to `ack_path` with its own fsync BEFORE moving
// on (so the side file is a durable lower bound on what was acked), then
// buffers a few more records without awaiting them and kills itself.
[[noreturn]] void RunChild(const std::string& wal_dir,
                           const std::string& ack_path) {
  FileWalStorage storage(wal_dir);
  WalOptions options;
  options.group.mode = WalSyncMode::kPerCommit;
  auto wal = WalManager::Open(&storage, kSegments, options);
  if (!wal.ok()) _exit(3);

  const int ack_fd =
      ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) _exit(4);

  for (TxnId txn = 1; txn <= kAckedTxns; ++txn) {
    const Timestamp init_ts = 10 * txn;
    const SegmentId segment = static_cast<SegmentId>(txn % kSegments);
    const std::uint32_t granule =
        static_cast<std::uint32_t>(txn % kGranules);
    if (!(*wal)
             ->LogWrite(segment, txn, init_ts, granule,
                        static_cast<Value>(1000 + txn))
             .ok()) {
      _exit(5);
    }
    auto ticket = (*wal)->LogCommit(segment, txn, init_ts, {segment});
    if (!ticket.ok()) _exit(6);
    if (!(*wal)->WaitDurable(*ticket).ok()) _exit(7);
    const std::string line = std::to_string(txn) + "\n";
    if (::write(ack_fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      _exit(8);
    }
    if (::fsync(ack_fd) != 0) _exit(9);
  }

  // A little unacked tail: appended, never awaited. Recovery may keep or
  // roll these back; either is consistent.
  (void)(*wal)->LogWrite(0, kAckedTxns + 1, 10 * (kAckedTxns + 1), 0, 7777);
  (void)(*wal)->LogCommit(0, kAckedTxns + 1, 10 * (kAckedTxns + 1), {0});

  ::raise(SIGKILL);
  _exit(10);  // unreachable
}

TEST(WalProcessCrash, Kill9ThenRecoverKeepsEveryAckedCommit) {
  char dir_template[] = "hdd_walcrash.XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr) << std::strerror(errno);
  const std::string scratch = dir_template;
  const std::string wal_dir = scratch + "/wal";
  const std::string ack_path = scratch + "/acked.txt";

  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << std::strerror(errno);
  if (child == 0) {
    RunChild(wal_dir, ack_path);  // never returns
  }

  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // The acked set the child durably published before dying.
  std::set<TxnId> acked;
  std::ifstream in(ack_path);
  ASSERT_TRUE(in.good());
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) acked.insert(std::stoull(line));
  }
  ASSERT_EQ(acked.size(), kAckedTxns);

  FileWalStorage storage(wal_dir);
  Database db(kSegments, kGranules, 0);
  const auto report = RecoverDatabase(&storage, &db);
  ASSERT_TRUE(report.ok());
  for (const TxnId txn : acked) {
    EXPECT_EQ(report->durable_commits.count(txn), 1u) << "txn " << txn;
    const Version* v = db.segment(static_cast<SegmentId>(txn % kSegments))
                           .granule(static_cast<std::uint32_t>(txn % kGranules))
                           .Find(10 * txn);
    ASSERT_NE(v, nullptr) << "txn " << txn;
    EXPECT_EQ(v->value, static_cast<Value>(1000 + txn));
    EXPECT_TRUE(v->committed);
  }
  EXPECT_GE(report->max_timestamp, 10 * kAckedTxns);

  // The directory is reusable: a second incarnation continues from the
  // frontier and recovers idempotently.
  Database again(kSegments, kGranules, 0);
  const auto report2 = RecoverDatabase(&storage, &again);
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report2->durable_commits, report->durable_commits);
  EXPECT_EQ(report2->frontier_ticket, report->frontier_ticket);

  std::error_code ec;
  std::filesystem::remove_all(scratch, ec);
}

}  // namespace
}  // namespace hdd
