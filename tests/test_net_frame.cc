// Frame codec and wire protocol: round trips, torn delivery, corruption
// rejection. The framing is byte-identical to the WAL's, but the decoder's
// contract differs — incomplete means "more bytes in flight", corruption
// means "close the connection" — so it gets its own property tests.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "wal/log_format.h"

namespace hdd {
namespace {

std::string RandomPayload(Rng& rng, std::size_t size) {
  std::string payload;
  payload.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    payload.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  return payload;
}

TEST(FrameCodec, RoundTripsRandomPayloadSizes) {
  Rng rng(42);
  FrameDecoder decoder;
  std::vector<std::string> sent;
  std::string stream;
  for (int i = 0; i < 200; ++i) {
    // Cover empty, tiny, and multi-KiB payloads.
    const std::size_t size = rng.NextBool(0.1)
                                 ? 0
                                 : static_cast<std::size_t>(
                                       rng.NextBounded(8 * 1024));
    sent.push_back(RandomPayload(rng, size));
    AppendNetFrame(&stream, sent.back());
  }
  decoder.Feed(stream);
  std::string payload;
  for (const std::string& expected : sent) {
    ASSERT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kFrame);
    EXPECT_EQ(payload, expected);
  }
  EXPECT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameCodec, TornDeliveryYieldsFramesOnlyWhenComplete) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::string> sent;
    std::string stream;
    for (int i = 0; i < 5; ++i) {
      sent.push_back(RandomPayload(
          rng, static_cast<std::size_t>(rng.NextBounded(300))));
      AppendNetFrame(&stream, sent.back());
    }
    FrameDecoder decoder;
    std::size_t delivered = 0;
    std::size_t off = 0;
    std::string payload;
    while (off < stream.size()) {
      // Random chunk sizes, including single bytes: every prefix boundary
      // must read as kNeedMore, never as a frame or corruption.
      const std::size_t chunk = static_cast<std::size_t>(
          1 + rng.NextBounded(std::min<std::size_t>(97, stream.size() - off)));
      decoder.Feed(std::string_view(stream).substr(off, chunk));
      off += chunk;
      for (;;) {
        const FrameDecoder::Next next = decoder.Poll(&payload);
        ASSERT_NE(next, FrameDecoder::Next::kCorrupt);
        if (next == FrameDecoder::Next::kNeedMore) break;
        ASSERT_LT(delivered, sent.size());
        EXPECT_EQ(payload, sent[delivered]);
        ++delivered;
      }
    }
    EXPECT_EQ(delivered, sent.size());
  }
}

TEST(FrameCodec, CorruptPayloadByteIsRejected) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const std::string payload =
        RandomPayload(rng, 1 + static_cast<std::size_t>(rng.NextBounded(256)));
    std::string stream;
    AppendNetFrame(&stream, payload);
    // Flip one random bit anywhere in the frame (header or payload).
    const std::size_t byte =
        static_cast<std::size_t>(rng.NextBounded(stream.size()));
    stream[byte] = static_cast<char>(stream[byte] ^
                                     (1u << rng.NextBounded(8)));
    FrameDecoder decoder;
    decoder.Feed(stream);
    std::string out;
    const FrameDecoder::Next next = decoder.Poll(&out);
    // A flipped length byte may leave the decoder waiting for bytes that
    // never come (that is the stream desync case the connection idle
    // timeout would reap); it must never deliver the corrupted payload as
    // a valid frame of the original content.
    if (next == FrameDecoder::Next::kFrame) {
      EXPECT_NE(out, payload) << "bit flip at byte " << byte
                              << " went undetected";
    } else {
      EXPECT_TRUE(next == FrameDecoder::Next::kCorrupt ||
                  next == FrameDecoder::Next::kNeedMore);
    }
    // Once corrupt, always corrupt.
    if (next == FrameDecoder::Next::kCorrupt) {
      decoder.Feed(stream);
      EXPECT_EQ(decoder.Poll(&out), FrameDecoder::Next::kCorrupt);
    }
  }
}

TEST(FrameCodec, InsaneLengthHeaderIsCorruptNotBuffered) {
  std::string stream;
  PutU32(&stream, kMaxNetFramePayload + 1);
  PutU32(&stream, 0);
  FrameDecoder decoder;
  decoder.Feed(stream);
  std::string out;
  EXPECT_EQ(decoder.Poll(&out), FrameDecoder::Next::kCorrupt);
}

TEST(FrameCodec, CompactionKeepsBufferBounded) {
  FrameDecoder decoder;
  const std::string payload(1000, 'x');
  std::string frame;
  AppendNetFrame(&frame, payload);
  std::string out;
  for (int i = 0; i < 1000; ++i) {
    decoder.Feed(frame);
    ASSERT_EQ(decoder.Poll(&out), FrameDecoder::Next::kFrame);
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

RequestMsg RandomSubmit(Rng& rng) {
  RequestMsg msg;
  msg.type = NetMsgType::kSubmit;
  msg.submit.request_id = rng.Next();
  msg.submit.txn_class = static_cast<ClassId>(rng.NextBounded(8));
  msg.submit.read_only = rng.NextBool(0.3);
  const int n_scope = static_cast<int>(rng.NextBounded(4));
  for (int i = 0; i < n_scope; ++i) {
    msg.submit.read_scope.push_back(
        static_cast<SegmentId>(rng.NextBounded(8)));
  }
  const int n_ops = static_cast<int>(rng.NextBounded(20));
  for (int i = 0; i < n_ops; ++i) {
    WireOp op;
    op.kind = rng.NextBool(0.5) ? WireOp::Kind::kRead : WireOp::Kind::kWrite;
    op.granule.segment = static_cast<SegmentId>(rng.NextBounded(8));
    op.granule.index = static_cast<std::uint32_t>(rng.NextBounded(1024));
    op.value = static_cast<Value>(rng.Next());
    msg.submit.ops.push_back(op);
  }
  return msg;
}

TEST(Protocol, RequestRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const RequestMsg msg = RandomSubmit(rng);
    const Result<RequestMsg> decoded = DecodeRequest(EncodeRequest(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->type, msg.type);
    EXPECT_EQ(decoded->submit.request_id, msg.submit.request_id);
    EXPECT_EQ(decoded->submit.txn_class, msg.submit.txn_class);
    EXPECT_EQ(decoded->submit.read_only, msg.submit.read_only);
    EXPECT_EQ(decoded->submit.read_scope, msg.submit.read_scope);
    ASSERT_EQ(decoded->submit.ops.size(), msg.submit.ops.size());
    for (std::size_t j = 0; j < msg.submit.ops.size(); ++j) {
      EXPECT_EQ(decoded->submit.ops[j].kind, msg.submit.ops[j].kind);
      EXPECT_EQ(decoded->submit.ops[j].granule, msg.submit.ops[j].granule);
      EXPECT_EQ(decoded->submit.ops[j].value, msg.submit.ops[j].value);
    }
  }
}

TEST(Protocol, PingRoundTrip) {
  RequestMsg msg;
  msg.type = NetMsgType::kPing;
  msg.request_id = 12345;
  const Result<RequestMsg> decoded = DecodeRequest(EncodeRequest(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, NetMsgType::kPing);
  EXPECT_EQ(decoded->request_id, 12345u);
}

TEST(Protocol, ResponseRoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    ResponseMsg msg;
    msg.request_id = rng.Next();
    switch (rng.NextBounded(4)) {
      case 0:
        msg.type = NetMsgType::kResult;
        msg.committed = rng.NextBool(0.8);
        msg.aborted_attempts = static_cast<std::uint32_t>(rng.NextBounded(10));
        for (int v = static_cast<int>(rng.NextBounded(8)); v > 0; --v) {
          msg.values.push_back(static_cast<Value>(rng.Next()));
        }
        break;
      case 1:
        msg.type = NetMsgType::kOverload;
        msg.retry_after_ms = static_cast<std::uint32_t>(rng.NextBounded(5000));
        break;
      case 2:
        msg.type = NetMsgType::kError;
        msg.error = RandomPayload(rng, rng.NextBounded(64));
        break;
      default:
        msg.type = NetMsgType::kPong;
        break;
    }
    const Result<ResponseMsg> decoded = DecodeResponse(EncodeResponse(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->type, msg.type);
    EXPECT_EQ(decoded->request_id, msg.request_id);
    EXPECT_EQ(decoded->committed, msg.committed);
    EXPECT_EQ(decoded->aborted_attempts, msg.aborted_attempts);
    EXPECT_EQ(decoded->values, msg.values);
    EXPECT_EQ(decoded->retry_after_ms, msg.retry_after_ms);
    EXPECT_EQ(decoded->error, msg.error);
  }
}

TEST(Protocol, MalformedPayloadsRejectedNotCrashed) {
  Rng rng(11);
  // Truncations of a valid message: every strict prefix must decode to an
  // error, never a bogus success.
  const std::string valid = EncodeRequest(RandomSubmit(rng));
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const Result<RequestMsg> decoded =
        DecodeRequest(std::string_view(valid).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << cut << " accepted";
  }
  // Trailing garbage after a valid message.
  EXPECT_FALSE(DecodeRequest(valid + "x").ok());
  // Random byte soup: must not crash and should essentially never parse.
  for (int i = 0; i < 500; ++i) {
    const std::string junk =
        RandomPayload(rng, 1 + static_cast<std::size_t>(rng.NextBounded(64)));
    (void)DecodeRequest(junk);
    (void)DecodeResponse(junk);
  }
  // Hostile op count: claims 2^16 ops with a tiny body.
  std::string hostile;
  hostile.push_back(static_cast<char>(NetMsgType::kSubmit));
  PutU64(&hostile, 1);
  PutU32(&hostile, 0);
  hostile.push_back(0);
  PutU32(&hostile, 0);              // empty read scope
  PutU32(&hostile, 0xFFFFFFFFu);    // absurd op count
  EXPECT_FALSE(DecodeRequest(hostile).ok());
}

TEST(Protocol, ToTxnProgramDeclaresOwnSegmentAccesses) {
  SubmitRequest submit;
  submit.txn_class = 2;
  submit.ops = {
      {WireOp::Kind::kRead, {0, 1}, 0},   // upper read: not declared
      {WireOp::Kind::kRead, {2, 5}, 0},   // own read: declared
      {WireOp::Kind::kWrite, {2, 6}, 7},  // own write: declared
  };
  auto values = std::make_shared<std::vector<Value>>();
  const TxnProgram program = ToTxnProgram(submit, values);
  EXPECT_EQ(program.options.txn_class, 2);
  ASSERT_EQ(program.declared_reads.size(), 1u);
  EXPECT_EQ(program.declared_reads[0], (GranuleRef{2, 5}));
  ASSERT_EQ(program.declared_writes.size(), 1u);
  EXPECT_EQ(program.declared_writes[0], (GranuleRef{2, 6}));

  SubmitRequest ro;
  ro.read_only = true;
  ro.ops = {{WireOp::Kind::kRead, {0, 1}, 0}};
  const TxnProgram ro_program = ToTxnProgram(ro, nullptr);
  EXPECT_TRUE(ro_program.options.read_only);
  EXPECT_EQ(ro_program.options.txn_class, kReadOnlyClass);
  EXPECT_TRUE(ro_program.declared_reads.empty());
}

}  // namespace
}  // namespace hdd
