#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace hdd {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(DigraphTest, AddNodes) {
  Digraph g;
  EXPECT_EQ(g.AddNode(), 0);
  EXPECT_EQ(g.AddNode(), 1);
  EXPECT_EQ(g.num_nodes(), 2);
}

TEST(DigraphTest, AddAndQueryArcs) {
  Digraph g(3);
  EXPECT_TRUE(g.AddArc(0, 1));
  EXPECT_TRUE(g.AddArc(1, 2));
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_FALSE(g.HasArc(1, 0));
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(DigraphTest, DuplicateArcRejected) {
  Digraph g(2);
  EXPECT_TRUE(g.AddArc(0, 1));
  EXPECT_FALSE(g.AddArc(0, 1));
  EXPECT_EQ(g.num_arcs(), 1u);
}

TEST(DigraphTest, SelfLoopRejected) {
  Digraph g(2);
  EXPECT_FALSE(g.AddArc(1, 1));
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(DigraphTest, RemoveArc) {
  Digraph g(2);
  g.AddArc(0, 1);
  EXPECT_TRUE(g.RemoveArc(0, 1));
  EXPECT_FALSE(g.HasArc(0, 1));
  EXPECT_FALSE(g.RemoveArc(0, 1));
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(DigraphTest, NeighborsMaintained) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.AddArc(3, 0);
  EXPECT_EQ(g.OutNeighbors(0), (std::set<NodeId>{1, 2}));
  EXPECT_EQ(g.InNeighbors(0), (std::set<NodeId>{3}));
  EXPECT_EQ(g.InNeighbors(1), (std::set<NodeId>{0}));
}

TEST(DigraphTest, ArcsEnumeration) {
  Digraph g(3);
  g.AddArc(2, 0);
  g.AddArc(0, 1);
  const auto arcs = g.Arcs();
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0], std::make_pair(0, 1));
  EXPECT_EQ(arcs[1], std::make_pair(2, 0));
}

TEST(DigraphTest, Equality) {
  Digraph a(2), b(2);
  a.AddArc(0, 1);
  EXPECT_FALSE(a == b);
  b.AddArc(0, 1);
  EXPECT_TRUE(a == b);
}

TEST(DigraphTest, DotOutputContainsLabels) {
  Digraph g(2);
  g.AddArc(0, 1);
  const std::string dot = g.ToDot({"D1", "D2"});
  EXPECT_NE(dot.find("D1"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

}  // namespace
}  // namespace hdd
