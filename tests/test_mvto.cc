#include "cc/mvto.h"

#include <gtest/gtest.h>

#include "txn/dependency_graph.h"

namespace hdd {
namespace {

constexpr GranuleRef kX{0, 0};
constexpr GranuleRef kY{0, 1};

class MvtoTest : public ::testing::Test {
 protected:
  MvtoTest() : db_(1, 4, 0) {}

  Database db_;
  LogicalClock clock_;
};

TEST_F(MvtoTest, BasicReadWriteCommit) {
  Mvto cc(&db_, &clock_);
  auto txn = cc.Begin({});
  ASSERT_TRUE(cc.Write(*txn, kX, 3).ok());
  auto value = cc.Read(*txn, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 3);
  ASSERT_TRUE(cc.Commit(*txn).ok());
}

TEST_F(MvtoTest, OldReaderNeverAborts) {
  Mvto cc(&db_, &clock_);
  auto old_txn = cc.Begin({});
  auto young_txn = cc.Begin({});
  ASSERT_TRUE(cc.Write(*young_txn, kX, 9).ok());
  ASSERT_TRUE(cc.Commit(*young_txn).ok());
  // Unlike single-version TO, the old reader gets the old version.
  auto value = cc.Read(*old_txn, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0);
  ASSERT_TRUE(cc.Commit(*old_txn).ok());
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST_F(MvtoTest, LateWriteUnderYoungerReadAborts) {
  Mvto cc(&db_, &clock_);
  auto old_txn = cc.Begin({});
  auto young_txn = cc.Begin({});
  ASSERT_TRUE(cc.Read(*young_txn, kX).ok());  // reads v0, rts = ts(young)
  ASSERT_TRUE(cc.Commit(*young_txn).ok());
  // Inserting a version between v0 and the young read would invalidate it.
  EXPECT_EQ(cc.Write(*old_txn, kX, 5).code(), StatusCode::kAborted);
  ASSERT_TRUE(cc.Abort(*old_txn).ok());
}

TEST_F(MvtoTest, LateWriteAfterOlderReadSucceeds) {
  Mvto cc(&db_, &clock_);
  auto young_txn = cc.Begin({});
  auto very_young = cc.Begin({});
  // A read by someone OLDER than the writer does not block the write.
  ASSERT_TRUE(cc.Read(*young_txn, kX).ok());
  ASSERT_TRUE(cc.Write(*very_young, kX, 5).ok());
  ASSERT_TRUE(cc.Commit(*very_young).ok());
  ASSERT_TRUE(cc.Commit(*young_txn).ok());
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST_F(MvtoTest, VersionsAccumulate) {
  Mvto cc(&db_, &clock_);
  for (int i = 1; i <= 5; ++i) {
    auto txn = cc.Begin({});
    ASSERT_TRUE(cc.Write(*txn, kX, i).ok());
    ASSERT_TRUE(cc.Commit(*txn).ok());
  }
  EXPECT_EQ(db_.granule(kX).num_versions(), 6u);  // initial + 5
  EXPECT_EQ(cc.metrics().versions_created.load(), 5u);
}

TEST_F(MvtoTest, SnapshotsArePerTimestamp) {
  Mvto cc(&db_, &clock_);
  // Interleave: begin reader between two writers, check it sees only the
  // first writer's value forever.
  auto w1 = cc.Begin({});
  ASSERT_TRUE(cc.Write(*w1, kX, 1).ok());
  ASSERT_TRUE(cc.Commit(*w1).ok());
  auto reader = cc.Begin({});
  auto w2 = cc.Begin({});
  ASSERT_TRUE(cc.Write(*w2, kX, 2).ok());
  ASSERT_TRUE(cc.Commit(*w2).ok());
  auto v1 = cc.Read(*reader, kX);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1);
  auto v2 = cc.Read(*reader, kX);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 1);  // repeatable
  ASSERT_TRUE(cc.Commit(*reader).ok());
}

TEST_F(MvtoTest, AbortedWriteInvisible) {
  Mvto cc(&db_, &clock_);
  auto w = cc.Begin({});
  ASSERT_TRUE(cc.Write(*w, kX, 77).ok());
  ASSERT_TRUE(cc.Abort(*w).ok());
  auto r = cc.Begin({});
  auto value = cc.Read(*r, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0);
  ASSERT_TRUE(cc.Commit(*r).ok());
}

TEST_F(MvtoTest, ReadRegistersTimestampByDefault) {
  Mvto cc(&db_, &clock_);
  auto r = cc.Begin({});
  ASSERT_TRUE(cc.Read(*r, kX).ok());
  ASSERT_TRUE(cc.Commit(*r).ok());
  EXPECT_EQ(cc.metrics().read_timestamps_written.load(), 1u);
  EXPECT_EQ(cc.metrics().unregistered_reads.load(), 0u);
}

TEST_F(MvtoTest, UnregisteredReadsAdmitWriteSkew) {
  // MV analogue of Figure 4: without read registration, a late write
  // slips under a younger committed read.
  MvtoOptions options;
  options.register_reads = false;
  Mvto cc(&db_, &clock_, options);
  auto old_txn = cc.Begin({});
  auto young_txn = cc.Begin({});
  ASSERT_TRUE(cc.Read(*young_txn, kX).ok());   // no rts left
  ASSERT_TRUE(cc.Write(*young_txn, kY, 1).ok());
  ASSERT_TRUE(cc.Commit(*young_txn).ok());
  ASSERT_TRUE(cc.Read(*old_txn, kY).ok());     // reads v0 of y (old state)
  // Old write lands although the younger txn already read around it.
  ASSERT_TRUE(cc.Write(*old_txn, kX, 5).ok());
  ASSERT_TRUE(cc.Commit(*old_txn).ok());
  auto report = CheckSerializability(cc.recorder());
  EXPECT_FALSE(report.serializable);
}

TEST_F(MvtoTest, BoundedVersionsPruneOldest) {
  MvtoOptions options;
  options.max_versions = 2;
  Mvto cc(&db_, &clock_, options);
  for (int i = 1; i <= 5; ++i) {
    auto txn = cc.Begin({});
    ASSERT_TRUE(cc.Write(*txn, kX, i).ok());
    ASSERT_TRUE(cc.Commit(*txn).ok());
  }
  EXPECT_EQ(db_.granule(kX).num_versions(), 2u);
  auto reader = cc.Begin({});
  auto value = cc.Read(*reader, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 5);
  ASSERT_TRUE(cc.Commit(*reader).ok());
}

TEST_F(MvtoTest, BoundedVersionsAbortPrunedSnapshotReads) {
  MvtoOptions options;
  options.max_versions = 1;
  Mvto cc(&db_, &clock_, options);
  auto old_reader = cc.Begin({});  // snapshot pinned before the writes
  for (int i = 1; i <= 3; ++i) {
    auto txn = cc.Begin({});
    ASSERT_TRUE(cc.Write(*txn, kX, i).ok());
    ASSERT_TRUE(cc.Commit(*txn).ok());
  }
  // The old reader's version (the initial one) is gone.
  auto value = cc.Read(*old_reader, kX);
  EXPECT_EQ(value.status().code(), StatusCode::kAborted);
  ASSERT_TRUE(cc.Abort(*old_reader).ok());
  // A fresh reader is unaffected.
  auto fresh = cc.Begin({});
  auto fresh_value = cc.Read(*fresh, kX);
  ASSERT_TRUE(fresh_value.ok());
  EXPECT_EQ(*fresh_value, 3);
  ASSERT_TRUE(cc.Commit(*fresh).ok());
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

TEST_F(MvtoTest, UnboundedKeepsEverything) {
  Mvto cc(&db_, &clock_);
  auto old_reader = cc.Begin({});
  for (int i = 1; i <= 3; ++i) {
    auto txn = cc.Begin({});
    ASSERT_TRUE(cc.Write(*txn, kX, i).ok());
    ASSERT_TRUE(cc.Commit(*txn).ok());
  }
  auto value = cc.Read(*old_reader, kX);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 0);  // its snapshot survived
  ASSERT_TRUE(cc.Commit(*old_reader).ok());
}

TEST_F(MvtoTest, TwoGranuleTransfersConserveTotal) {
  Mvto cc(&db_, &clock_);
  // Seed both accounts with 100.
  {
    auto seed = cc.Begin({});
    ASSERT_TRUE(cc.Write(*seed, kX, 100).ok());
    ASSERT_TRUE(cc.Write(*seed, kY, 100).ok());
    ASSERT_TRUE(cc.Commit(*seed).ok());
  }
  int committed = 0;
  for (int i = 0; i < 20; ++i) {
    auto txn = cc.Begin({});
    auto from = cc.Read(*txn, kX);
    auto to = cc.Read(*txn, kY);
    if (!from.ok() || !to.ok() || !cc.Write(*txn, kX, *from - 1).ok() ||
        !cc.Write(*txn, kY, *to + 1).ok()) {
      ASSERT_TRUE(cc.Abort(*txn).ok());
      continue;
    }
    ASSERT_TRUE(cc.Commit(*txn).ok());
    ++committed;
  }
  auto audit = cc.Begin({});
  auto x = cc.Read(*audit, kX);
  auto y = cc.Read(*audit, kY);
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*x + *y, 200);
  EXPECT_EQ(*y - *x, 2 * committed);
  ASSERT_TRUE(cc.Commit(*audit).ok());
  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable);
}

}  // namespace
}  // namespace hdd
