#include "cc/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace hdd {
namespace {

constexpr GranuleRef kX{0, 0};
constexpr GranuleRef kY{0, 1};

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  bool waited = false;
  EXPECT_TRUE(lm.Acquire(1, 1, kX, LockMode::kShared, &waited).ok());
  EXPECT_FALSE(waited);
  EXPECT_TRUE(lm.Acquire(2, 2, kX, LockMode::kShared, &waited).ok());
  EXPECT_FALSE(waited);
  EXPECT_EQ(lm.NumHeld(1), 1u);
  EXPECT_EQ(lm.NumHeld(2), 1u);
}

TEST(LockManagerTest, ReentrantAcquire) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 1, kX, LockMode::kShared, nullptr).ok());
  EXPECT_TRUE(lm.Acquire(1, 1, kX, LockMode::kShared, nullptr).ok());
  EXPECT_TRUE(lm.Acquire(1, 1, kX, LockMode::kExclusive, nullptr).ok());
  // X covers a later S request.
  EXPECT_TRUE(lm.Acquire(1, 1, kX, LockMode::kShared, nullptr).ok());
}

TEST(LockManagerTest, SoleHolderUpgrades) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 1, kX, LockMode::kShared, nullptr).ok());
  bool waited = true;
  EXPECT_TRUE(lm.Acquire(1, 1, kX, LockMode::kExclusive, &waited).ok());
  EXPECT_FALSE(waited);
  // Now exclusive: another txn's S must conflict (NoWait manager checks).
}

TEST(LockManagerTest, NoWaitConflictReturnsBusy) {
  LockManager lm(DeadlockPolicy::kNoWait);
  EXPECT_TRUE(lm.Acquire(1, 1, kX, LockMode::kExclusive, nullptr).ok());
  Status status = lm.Acquire(2, 2, kX, LockMode::kShared, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kBusy);
}

TEST(LockManagerTest, ExclusiveBlocksUntilRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX, LockMode::kExclusive, nullptr).ok());
  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    bool waited = false;
    ASSERT_TRUE(lm.Acquire(2, 2, kX, LockMode::kShared, &waited).ok());
    EXPECT_TRUE(waited);
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  blocked.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockManagerTest, DeadlockDetectedAndVictimized) {
  LockManager lm(DeadlockPolicy::kDetect);
  ASSERT_TRUE(lm.Acquire(1, 1, kX, LockMode::kExclusive, nullptr).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kY, LockMode::kExclusive, nullptr).ok());
  // t1 blocks on Y (held by t2).
  std::thread blocked([&] {
    Status status = lm.Acquire(1, 1, kY, LockMode::kExclusive, nullptr);
    EXPECT_TRUE(status.ok());  // granted once t2 is victimized & releases
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // t2 requesting X closes the cycle: t2 must be chosen as victim.
  Status status = lm.Acquire(2, 2, kX, LockMode::kExclusive, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kDeadlock);
  lm.ReleaseAll(2);
  blocked.join();
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, WaitDieYoungerDies) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  // Older txn (ts 1) holds the lock; younger (ts 9) must die.
  ASSERT_TRUE(lm.Acquire(1, 1, kX, LockMode::kExclusive, nullptr).ok());
  Status status = lm.Acquire(2, 9, kX, LockMode::kExclusive, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kDeadlock);
}

TEST(LockManagerTest, WaitDieOlderWaits) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  // Younger txn (ts 9) holds the lock; older (ts 1) waits.
  ASSERT_TRUE(lm.Acquire(2, 9, kX, LockMode::kExclusive, nullptr).ok());
  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    bool waited = false;
    ASSERT_TRUE(lm.Acquire(1, 1, kX, LockMode::kExclusive, &waited).ok());
    EXPECT_TRUE(waited);
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(2);
  blocked.join();
  EXPECT_TRUE(acquired.load());
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, FifoPreventsWriterStarvation) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX, LockMode::kShared, nullptr).ok());
  // Writer queues behind the S holder.
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    ASSERT_TRUE(lm.Acquire(2, 2, kX, LockMode::kExclusive, nullptr).ok());
    writer_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // A later S request must NOT jump the waiting writer.
  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    ASSERT_TRUE(lm.Acquire(3, 3, kX, LockMode::kShared, nullptr).ok());
    reader_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(writer_done.load());
  EXPECT_FALSE(reader_done.load());
  lm.ReleaseAll(1);
  writer.join();
  EXPECT_TRUE(writer_done.load());
  lm.ReleaseAll(2);
  reader.join();
  EXPECT_TRUE(reader_done.load());
  lm.ReleaseAll(3);
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX, LockMode::kExclusive, nullptr).ok());
  ASSERT_TRUE(lm.Acquire(1, 1, kY, LockMode::kShared, nullptr).ok());
  EXPECT_EQ(lm.NumHeld(1), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.NumHeld(1), 0u);
  EXPECT_TRUE(lm.Acquire(2, 2, kX, LockMode::kExclusive, nullptr).ok());
  EXPECT_TRUE(lm.Acquire(3, 3, kY, LockMode::kExclusive, nullptr).ok());
}

TEST(LockManagerTest, UpgradeWaitsForOtherSharers) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 1, kX, LockMode::kShared, nullptr).ok());
  ASSERT_TRUE(lm.Acquire(2, 2, kX, LockMode::kShared, nullptr).ok());
  std::atomic<bool> upgraded{false};
  std::thread upgrader([&] {
    bool waited = false;
    ASSERT_TRUE(lm.Acquire(1, 1, kX, LockMode::kExclusive, &waited).ok());
    EXPECT_TRUE(waited);
    upgraded = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(upgraded.load());
  lm.ReleaseAll(2);
  upgrader.join();
  EXPECT_TRUE(upgraded.load());
  lm.ReleaseAll(1);
}

}  // namespace
}  // namespace hdd
