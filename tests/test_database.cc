#include "storage/database.h"

#include <gtest/gtest.h>

namespace hdd {
namespace {

TEST(DatabaseTest, NamedSegments) {
  Database db({"events", "inventory"}, 4, 7);
  EXPECT_EQ(db.num_segments(), 2);
  EXPECT_EQ(db.segment(0).name(), "events");
  EXPECT_EQ(db.segment(1).name(), "inventory");
  EXPECT_EQ(db.segment(0).size(), 4u);
  EXPECT_EQ(db.granule({0, 3}).LatestCommitted()->value, 7);
}

TEST(DatabaseTest, NumberedSegments) {
  Database db(3, 2);
  EXPECT_EQ(db.num_segments(), 3);
  EXPECT_EQ(db.segment(2).name(), "D2");
}

TEST(DatabaseTest, ValidateRef) {
  Database db(2, 3);
  EXPECT_TRUE(db.Validate({0, 0}).ok());
  EXPECT_TRUE(db.Validate({1, 2}).ok());
  EXPECT_FALSE(db.Validate({2, 0}).ok());
  EXPECT_FALSE(db.Validate({-1, 0}).ok());
  EXPECT_FALSE(db.Validate({0, 3}).ok());
}

TEST(DatabaseTest, AllocateExtendsSegment) {
  Database db(1, 1);
  const std::uint32_t idx = db.segment(0).Allocate(55);
  EXPECT_EQ(idx, 1u);
  EXPECT_TRUE(db.Validate({0, idx}).ok());
  EXPECT_EQ(db.granule({0, idx}).LatestCommitted()->value, 55);
}

TEST(DatabaseTest, AllocateKeepsExistingGranuleAddressesStable) {
  Database db(1, 2);
  Granule* before = &db.granule({0, 0});
  for (int i = 0; i < 1000; ++i) db.segment(0).Allocate(0);
  EXPECT_EQ(before, &db.granule({0, 0}));
}

TEST(DatabaseTest, TotalVersionsCountsChains) {
  Database db(2, 2);
  EXPECT_EQ(db.TotalVersions(), 4u);
  Version v;
  v.order_key = 5;
  v.wts = 5;
  v.creator = 1;
  v.committed = true;
  ASSERT_TRUE(db.granule({0, 0}).Insert(v).ok());
  EXPECT_EQ(db.TotalVersions(), 5u);
}

TEST(DatabaseTest, CollectGarbageAcrossSegments) {
  Database db(2, 1);
  for (SegmentId s = 0; s < 2; ++s) {
    for (Timestamp ts = 10; ts <= 30; ts += 10) {
      Version v;
      v.order_key = ts;
      v.wts = ts;
      v.creator = ts;
      v.committed = true;
      ASSERT_TRUE(db.granule({s, 0}).Insert(v).ok());
    }
  }
  EXPECT_EQ(db.TotalVersions(), 8u);
  // Horizon 100: keep only the newest committed version per granule.
  EXPECT_EQ(db.CollectGarbage(100), 6u);
  EXPECT_EQ(db.TotalVersions(), 2u);
}

}  // namespace
}  // namespace hdd
