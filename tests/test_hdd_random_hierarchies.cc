// Theorem 1 / Theorem 2, stress-tested: on RANDOM transitive-semi-tree
// hierarchies (arbitrary branching, random read sets along critical
// paths), concurrent HDD executions with update, wall-read-only and
// hosted-read-only transactions must always produce acyclic dependency
// graphs — with zero read registration outside root segments.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "engine/executor.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

struct RandomHierarchy {
  PartitionSpec spec;
  std::vector<int> parent;                 // tree arcs point child->parent
  std::vector<std::vector<SegmentId>> ancestors;  // per class, bottom-up
};

RandomHierarchy MakeRandomHierarchy(Rng& rng) {
  RandomHierarchy h;
  const int n = static_cast<int>(rng.NextInRange(2, 7));
  h.parent.assign(n, -1);
  h.ancestors.resize(n);
  for (int v = 1; v < n; ++v) {
    h.parent[v] = static_cast<int>(rng.NextBounded(v));
    for (int a = h.parent[v]; a != -1; a = h.parent[a]) {
      h.ancestors[v].push_back(a);
    }
  }
  for (int v = 0; v < n; ++v) {
    h.spec.segment_names.push_back("S" + std::to_string(v));
    TransactionTypeSpec type;
    type.name = "class" + std::to_string(v);
    type.root_segment = v;
    // Random subset of ancestors as declared reads (critical-path reads).
    for (SegmentId a : h.ancestors[v]) {
      if (rng.NextBool(0.7)) type.read_segments.push_back(a);
    }
    h.spec.transaction_types.push_back(type);
  }
  return h;
}

class RandomHierarchyWorkload : public Workload {
 public:
  RandomHierarchyWorkload(const RandomHierarchy& h,
                          std::uint32_t granules_per_segment)
      : h_(h), granules_(granules_per_segment) {}

  TxnProgram Make(std::uint64_t, Rng& rng) const override {
    const int n = static_cast<int>(h_.parent.size());
    TxnProgram program;
    const double roll = rng.NextDouble();
    if (roll < 0.10) {
      // Wall read-only: read a few random granules anywhere.
      std::vector<GranuleRef> reads;
      for (int i = 0; i < 4; ++i) {
        reads.push_back({static_cast<SegmentId>(rng.NextBounded(n)),
                         static_cast<std::uint32_t>(
                             rng.NextBounded(granules_))});
      }
      program.options.read_only = true;
      program.body = [reads](ConcurrencyController& cc,
                             const TxnDescriptor& txn) -> Status {
        for (GranuleRef ref : reads) {
          HDD_RETURN_IF_ERROR(cc.Read(txn, ref).status());
        }
        return Status::OK();
      };
      return program;
    }
    if (roll < 0.18) {
      // Hosted read-only: a class plus the segments its class actually
      // declares (and therefore reaches by critical paths in the DHG).
      const int cls = static_cast<int>(rng.NextBounded(n));
      std::vector<SegmentId> scope = {cls};
      for (SegmentId a : h_.spec.transaction_types[cls].read_segments) {
        scope.push_back(a);
      }
      std::vector<GranuleRef> reads;
      for (SegmentId s : scope) {
        reads.push_back({s, static_cast<std::uint32_t>(
                                rng.NextBounded(granules_))});
      }
      program.options.read_only = true;
      program.options.read_scope = scope;
      program.body = [reads](ConcurrencyController& cc,
                             const TxnDescriptor& txn) -> Status {
        for (GranuleRef ref : reads) {
          HDD_RETURN_IF_ERROR(cc.Read(txn, ref).status());
        }
        return Status::OK();
      };
      return program;
    }
    // Update transaction: reads from declared segments, writes own.
    const int cls = static_cast<int>(rng.NextBounded(n));
    const auto& declared = h_.spec.transaction_types[cls].read_segments;
    std::vector<GranuleRef> reads;
    for (SegmentId s : declared) {
      reads.push_back(
          {s, static_cast<std::uint32_t>(rng.NextBounded(granules_))});
    }
    std::vector<GranuleRef> own;
    const int own_ops = static_cast<int>(rng.NextInRange(1, 3));
    for (int i = 0; i < own_ops; ++i) {
      own.push_back(
          {cls, static_cast<std::uint32_t>(rng.NextBounded(granules_))});
    }
    program.options.txn_class = cls;
    program.body = [reads, own](ConcurrencyController& cc,
                                const TxnDescriptor& txn) -> Status {
      Value acc = 1;
      for (GranuleRef ref : reads) {
        HDD_ASSIGN_OR_RETURN(Value v, cc.Read(txn, ref));
        acc += v;
      }
      for (GranuleRef ref : own) {
        HDD_ASSIGN_OR_RETURN(Value v, cc.Read(txn, ref));
        HDD_RETURN_IF_ERROR(cc.Write(txn, ref, v + acc));
      }
      return Status::OK();
    };
    return program;
  }

 private:
  const RandomHierarchy& h_;
  std::uint32_t granules_;
};

class RandomHierarchyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomHierarchyTest, ConcurrentExecutionSerializable) {
  Rng rng(GetParam());
  for (int round = 0; round < 3; ++round) {
    RandomHierarchy h = MakeRandomHierarchy(rng);
    auto schema = HierarchySchema::Create(h.spec);
    ASSERT_TRUE(schema.ok()) << schema.status();
    constexpr std::uint32_t kGranules = 8;
    Database db(static_cast<int>(h.spec.segment_names.size()), kGranules);
    LogicalClock clock;
    HddController cc(&db, &clock, &*schema);

    RandomHierarchyWorkload workload(h, kGranules);
    ExecutorOptions options;
    options.num_threads = 4;
    options.seed = GetParam() * 31 + static_cast<std::uint64_t>(round);
    ExecutorStats stats = RunWorkload(cc, workload, 250, options);
    EXPECT_EQ(stats.failed, 0u);

    auto report = CheckSerializability(cc.recorder());
    EXPECT_TRUE(report.serializable)
        << "seed " << GetParam() << " round " << round
        << " produced a cycle of " << report.witness_cycle.size()
        << " transactions";
    EXPECT_EQ(cc.metrics().read_locks_acquired.load(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHierarchyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u));

}  // namespace
}  // namespace hdd
