// API fuzzing: hammer every controller with random — frequently invalid —
// operation sequences from several threads and assert the contract: no
// crash, sane status codes, committed results always serializable, and no
// uncommitted version left behind once everything has finished.
//
// Each fuzzer thread drives at most ONE open transaction at a time:
// blocking controllers may legitimately park a transaction behind another
// thread's (which keeps making progress), but a thread that held two of
// its own transactions could deadlock itself and hang the test.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

class FuzzTest
    : public ::testing::TestWithParam<std::tuple<ControllerKind,
                                                 std::uint64_t>> {};

TEST_P(FuzzTest, RandomOpSoup) {
  const auto [kind, seed] = GetParam();
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  ASSERT_TRUE(schema.ok());
  Database db(4, 4, 0);
  LogicalClock clock;
  auto cc = CreateController(kind, &db, &clock, &*schema);

  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 101 + static_cast<std::uint64_t>(t));
      std::optional<TxnDescriptor> open;
      for (int op = 0; op < kOpsPerThread; ++op) {
        if (!open.has_value()) {
          TxnOptions options;
          if (rng.NextBool(0.15)) {
            options.read_only = true;
          } else {
            // Sometimes an invalid class on purpose.
            options.txn_class =
                static_cast<ClassId>(rng.NextInRange(-1, 5));
          }
          auto txn = cc->Begin(options);
          if (txn.ok()) {
            open = *txn;
          } else {
            EXPECT_EQ(txn.status().code(), StatusCode::kInvalidArgument);
          }
          continue;
        }
        const double roll = rng.NextDouble();
        GranuleRef ref{static_cast<SegmentId>(rng.NextInRange(0, 4)),
                       static_cast<std::uint32_t>(rng.NextInRange(0, 5))};
        if (roll < 0.35) {
          auto value = cc->Read(*open, ref);
          if (!value.ok() && value.status().IsRetryable()) {
            (void)cc->Abort(*open);
            open.reset();
          }
        } else if (roll < 0.6) {
          Status status =
              cc->Write(*open, ref,
                        static_cast<Value>(rng.NextInRange(0, 9)));
          if (status.IsRetryable()) {
            (void)cc->Abort(*open);
            open.reset();
          }
        } else if (roll < 0.85) {
          // Commit either succeeds or is a commit-time validation abort
          // (OCC); anything else is a contract violation.
          Status commit_status = cc->Commit(*open);
          EXPECT_TRUE(commit_status.ok() ||
                      commit_status.code() == StatusCode::kAborted)
              << commit_status;
          // Double-finish must be rejected, not crash.
          EXPECT_EQ(cc->Commit(*open).code(),
                    StatusCode::kFailedPrecondition);
          EXPECT_EQ(cc->Read(*open, GranuleRef{0, 0}).status().code(),
                    StatusCode::kFailedPrecondition);
          open.reset();
        } else {
          EXPECT_TRUE(cc->Abort(*open).ok());
          EXPECT_EQ(cc->Abort(*open).code(),
                    StatusCode::kFailedPrecondition);
          open.reset();
        }
      }
      if (open.has_value()) (void)cc->Abort(*open);
    });
  }
  for (auto& t : threads) t.join();

  // Contract checks after the dust settles.
  EXPECT_TRUE(CheckSerializability(cc->recorder()).serializable)
      << ControllerKindName(kind) << " seed " << seed;
  for (SegmentId s = 0; s < db.num_segments(); ++s) {
    Segment& seg = db.segment(s);
    const std::uint32_t count = seg.size();
    std::lock_guard<std::mutex> guard(seg.latch());
    for (std::uint32_t g = 0; g < count; ++g) {
      for (const Version& v : seg.granule(g).versions()) {
        EXPECT_TRUE(v.committed)
            << "leftover uncommitted version under "
            << ControllerKindName(kind);
      }
    }
  }
}

// Second round, aimed at the per-class sharded HddController: a RANDOM
// hierarchy (so class/segment shapes vary per seed), more threads than
// classes, deliberately invalid classes / scopes / wall indices, plus a
// chaos thread that releases walls, garbage-collects and runs one
// Restructure mid-flight. Everything a thread feeds the controller is a
// pure function of (seed, thread index), so a failing seed reproduces;
// the seed is in every assertion message via SCOPED_TRACE.
class HddHierarchyFuzzTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HddHierarchyFuzzTest, RandomHierarchyOpSoup) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("seed " + std::to_string(seed));

  // Random tree hierarchy: parent[v] < v; each class declares a random
  // subset of its ancestors as critical-path reads.
  Rng shape_rng(seed);
  const int n = static_cast<int>(shape_rng.NextInRange(2, 7));
  PartitionSpec spec;
  std::vector<int> parent(n, -1);
  for (int v = 0; v < n; ++v) {
    if (v > 0) parent[v] = static_cast<int>(shape_rng.NextBounded(v));
    spec.segment_names.push_back("S" + std::to_string(v));
    TransactionTypeSpec type;
    type.name = "class" + std::to_string(v);
    type.root_segment = v;
    for (int a = parent[v]; a != -1; a = parent[a]) {
      if (shape_rng.NextBool(0.7)) type.read_segments.push_back(a);
    }
    spec.transaction_types.push_back(type);
  }
  auto schema = HierarchySchema::Create(spec);
  ASSERT_TRUE(schema.ok()) << schema.status();

  constexpr std::uint32_t kGranules = 6;
  Database db(n, kGranules);
  LogicalClock clock;
  HddController cc(&db, &clock, &*schema);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 613 + static_cast<std::uint64_t>(t));
      std::optional<TxnDescriptor> open;
      for (int op = 0; op < kOpsPerThread; ++op) {
        if (!open.has_value()) {
          TxnOptions options;
          const double kind = rng.NextDouble();
          if (kind < 0.12) {
            options.read_only = true;  // wall read (Protocol C)
          } else if (kind < 0.20) {
            // Hosted read-only with a sometimes-bogus scope.
            options.read_only = true;
            const int host = static_cast<int>(rng.NextBounded(n));
            options.read_scope = {static_cast<SegmentId>(host)};
            for (int a = parent[host]; a != -1; a = parent[a]) {
              options.read_scope.push_back(static_cast<SegmentId>(a));
            }
            if (rng.NextBool(0.3)) {
              options.read_scope.push_back(
                  static_cast<SegmentId>(rng.NextInRange(0, n + 2)));
            }
          } else if (kind < 0.26) {
            // Time travel against a possibly-invalid wall index.
            options.read_only = true;
            options.as_of_wall = static_cast<int>(rng.NextInRange(-1, 4));
          } else {
            // Update txn; sometimes an invalid class on purpose.
            options.txn_class =
                static_cast<ClassId>(rng.NextInRange(-1, n + 1));
          }
          auto txn = cc.Begin(options);
          if (txn.ok()) {
            open = *txn;
          } else {
            // Bad class/scope → InvalidArgument; a wall index that does
            // not exist (yet) or whose versions were GC'd →
            // FailedPrecondition. Nothing else is acceptable.
            EXPECT_TRUE(txn.status().code() ==
                            StatusCode::kInvalidArgument ||
                        txn.status().code() ==
                            StatusCode::kFailedPrecondition)
                << txn.status();
          }
          continue;
        }
        const double roll = rng.NextDouble();
        GranuleRef ref{static_cast<SegmentId>(rng.NextInRange(0, n + 1)),
                       static_cast<std::uint32_t>(
                           rng.NextInRange(0, kGranules + 1))};
        if (roll < 0.40) {
          auto value = cc.Read(*open, ref);
          if (!value.ok() && value.status().IsRetryable()) {
            (void)cc.Abort(*open);
            open.reset();
          }
        } else if (roll < 0.62) {
          Status status = cc.Write(
              *open, ref, static_cast<Value>(rng.NextInRange(0, 9)));
          if (status.IsRetryable()) {
            (void)cc.Abort(*open);
            open.reset();
          }
        } else if (roll < 0.86) {
          Status commit_status = cc.Commit(*open);
          EXPECT_TRUE(commit_status.ok() ||
                      commit_status.code() == StatusCode::kAborted)
              << commit_status;
          EXPECT_EQ(cc.Commit(*open).code(),
                    StatusCode::kFailedPrecondition);
          open.reset();
        } else {
          EXPECT_TRUE(cc.Abort(*open).ok());
          open.reset();
        }
      }
      if (open.has_value()) (void)cc.Abort(*open);
    });
  }
  // Chaos thread: wall releases, GC and one Restructure while the soup is
  // running. None of these may crash, deadlock or break serializability.
  std::thread chaos([&] {
    Rng rng(seed * 7717);
    bool restructured = false;
    while (!done.load(std::memory_order_relaxed)) {
      const double roll = rng.NextDouble();
      if (roll < 0.45) {
        (void)cc.ReleaseNewWall();
      } else if (roll < 0.75) {
        (void)cc.CollectGarbage();
      } else if (!restructured && n >= 2) {
        // Make "write two random segments at once" legal: merges their
        // classes, draining only the affected ones.
        restructured = true;
        const SegmentId a = static_cast<SegmentId>(rng.NextBounded(n));
        const SegmentId b = static_cast<SegmentId>(rng.NextBounded(n));
        (void)cc.Restructure({a, b}, {});
      } else {
        (void)cc.SafeGcHorizon();
      }
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_relaxed);
  chaos.join();

  EXPECT_TRUE(CheckSerializability(cc.recorder()).serializable)
      << "hdd random-hierarchy fuzz, seed " << seed;
  for (SegmentId s = 0; s < db.num_segments(); ++s) {
    Segment& seg = db.segment(s);
    const std::uint32_t count = seg.size();
    std::lock_guard<std::mutex> guard(seg.latch());
    for (std::uint32_t g = 0; g < count; ++g) {
      for (const Version& v : seg.granule(g).versions()) {
        EXPECT_TRUE(v.committed)
            << "leftover uncommitted version, seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HddHierarchyFuzzTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

INSTANTIATE_TEST_SUITE_P(
    Soup, FuzzTest,
    ::testing::Combine(::testing::ValuesIn(AllControllerKinds()),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<
        std::tuple<ControllerKind, std::uint64_t>>& info) {
      std::string name(ControllerKindName(std::get<0>(info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hdd
