// API fuzzing: hammer every controller with random — frequently invalid —
// operation sequences from several threads and assert the contract: no
// crash, sane status codes, committed results always serializable, and no
// uncommitted version left behind once everything has finished.
//
// Each fuzzer thread drives at most ONE open transaction at a time:
// blocking controllers may legitimately park a transaction behind another
// thread's (which keeps making progress), but a thread that held two of
// its own transactions could deadlock itself and hang the test.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

class FuzzTest
    : public ::testing::TestWithParam<std::tuple<ControllerKind,
                                                 std::uint64_t>> {};

TEST_P(FuzzTest, RandomOpSoup) {
  const auto [kind, seed] = GetParam();
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  ASSERT_TRUE(schema.ok());
  Database db(4, 4, 0);
  LogicalClock clock;
  auto cc = CreateController(kind, &db, &clock, &*schema);

  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 101 + static_cast<std::uint64_t>(t));
      std::optional<TxnDescriptor> open;
      for (int op = 0; op < kOpsPerThread; ++op) {
        if (!open.has_value()) {
          TxnOptions options;
          if (rng.NextBool(0.15)) {
            options.read_only = true;
          } else {
            // Sometimes an invalid class on purpose.
            options.txn_class =
                static_cast<ClassId>(rng.NextInRange(-1, 5));
          }
          auto txn = cc->Begin(options);
          if (txn.ok()) {
            open = *txn;
          } else {
            EXPECT_EQ(txn.status().code(), StatusCode::kInvalidArgument);
          }
          continue;
        }
        const double roll = rng.NextDouble();
        GranuleRef ref{static_cast<SegmentId>(rng.NextInRange(0, 4)),
                       static_cast<std::uint32_t>(rng.NextInRange(0, 5))};
        if (roll < 0.35) {
          auto value = cc->Read(*open, ref);
          if (!value.ok() && value.status().IsRetryable()) {
            (void)cc->Abort(*open);
            open.reset();
          }
        } else if (roll < 0.6) {
          Status status =
              cc->Write(*open, ref,
                        static_cast<Value>(rng.NextInRange(0, 9)));
          if (status.IsRetryable()) {
            (void)cc->Abort(*open);
            open.reset();
          }
        } else if (roll < 0.85) {
          // Commit either succeeds or is a commit-time validation abort
          // (OCC); anything else is a contract violation.
          Status commit_status = cc->Commit(*open);
          EXPECT_TRUE(commit_status.ok() ||
                      commit_status.code() == StatusCode::kAborted)
              << commit_status;
          // Double-finish must be rejected, not crash.
          EXPECT_EQ(cc->Commit(*open).code(),
                    StatusCode::kFailedPrecondition);
          EXPECT_EQ(cc->Read(*open, GranuleRef{0, 0}).status().code(),
                    StatusCode::kFailedPrecondition);
          open.reset();
        } else {
          EXPECT_TRUE(cc->Abort(*open).ok());
          EXPECT_EQ(cc->Abort(*open).code(),
                    StatusCode::kFailedPrecondition);
          open.reset();
        }
      }
      if (open.has_value()) (void)cc->Abort(*open);
    });
  }
  for (auto& t : threads) t.join();

  // Contract checks after the dust settles.
  EXPECT_TRUE(CheckSerializability(cc->recorder()).serializable)
      << ControllerKindName(kind) << " seed " << seed;
  for (SegmentId s = 0; s < db.num_segments(); ++s) {
    Segment& seg = db.segment(s);
    const std::uint32_t count = seg.size();
    std::lock_guard<std::mutex> guard(seg.latch());
    for (std::uint32_t g = 0; g < count; ++g) {
      for (const Version& v : seg.granule(g).versions()) {
        EXPECT_TRUE(v.committed)
            << "leftover uncommitted version under "
            << ControllerKindName(kind);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Soup, FuzzTest,
    ::testing::Combine(::testing::ValuesIn(AllControllerKinds()),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<
        std::tuple<ControllerKind, std::uint64_t>>& info) {
      std::string name(ControllerKindName(std::get<0>(info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hdd
