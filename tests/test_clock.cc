#include "common/clock.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace hdd {
namespace {

TEST(ClockTest, StartsAtOne) {
  LogicalClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  EXPECT_EQ(clock.Tick(), 1u);
  EXPECT_EQ(clock.Now(), 1u);
}

TEST(ClockTest, StrictlyIncreasing) {
  LogicalClock clock;
  Timestamp prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const Timestamp t = clock.Tick();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(ClockTest, ResetRestarts) {
  LogicalClock clock;
  clock.Tick();
  clock.Tick();
  clock.Reset();
  EXPECT_EQ(clock.Tick(), 1u);
}

TEST(ClockTest, SentinelsBracketRealTimestamps) {
  LogicalClock clock;
  const Timestamp t = clock.Tick();
  EXPECT_GT(t, kTimestampMin);
  EXPECT_LT(t, kTimestampInfinity);
}

TEST(ClockTest, ConcurrentTicksAreUnique) {
  LogicalClock clock;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<Timestamp>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&clock, &seen, i] {
      seen[i].reserve(kPerThread);
      for (int j = 0; j < kPerThread; ++j) seen[i].push_back(clock.Tick());
    });
  }
  for (auto& t : threads) t.join();
  std::set<Timestamp> all;
  for (const auto& v : seen) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace hdd
