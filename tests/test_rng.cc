#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace hdd {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng r(0);
  std::uint64_t x = r.Next();
  std::uint64_t y = r.Next();
  EXPECT_NE(x, y);  // a badly-seeded generator would be stuck at zero
  EXPECT_NE(x, 0u);
}

TEST(RngTest, BoundedStaysInBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextBounded(13), 13u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng r(11);
  std::map<std::uint64_t, int> histogram;
  for (int i = 0; i < 10000; ++i) ++histogram[r.NextBounded(8)];
  EXPECT_EQ(histogram.size(), 8u);
  for (const auto& [value, count] : histogram) {
    EXPECT_GT(count, 900) << "value " << value << " badly under-sampled";
  }
}

TEST(RngTest, RangeInclusive) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = r.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng r(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.NextBool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(ZipfianTest, InRangeAndSkewed) {
  Rng r(42);
  ZipfianGenerator zipf(100, 0.9);
  std::vector<int> histogram(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = zipf.Next(r);
    ASSERT_LT(v, 100u);
    ++histogram[v];
  }
  // Item 0 must be far hotter than the median item.
  EXPECT_GT(histogram[0], 10 * histogram[50] + 1);
}

TEST(ZipfianTest, ThetaZeroIsRoughlyUniform) {
  Rng r(43);
  ZipfianGenerator zipf(10, 0.0);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 20000; ++i) ++histogram[zipf.Next(r)];
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(histogram[i], 1000);
    EXPECT_LT(histogram[i], 3500);
  }
}

}  // namespace
}  // namespace hdd
