// End-to-end tests of the network front end: admission policy, the epoll
// server against real loopback sockets, backpressure, overload shedding
// (Protocol C first), graceful shutdown, and fd hygiene.

#include <dirent.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <set>
#include <string>
#include <vector>

#include "net/admission.h"
#include "net/client.h"
#include "net/loopback.h"
#include "net/server.h"
#include "obs/metrics_registry.h"
#include "wal/log_format.h"

namespace hdd {
namespace {

int CountOpenFds() {
  int count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;  // includes ".", "..", and the dirfd itself — fine: we
                 // only ever compare before/after counts.
}

TEST(Admission, AdmitsWithinCapsAndFinishFrees) {
  AdmissionOptions options;
  options.total_inflight_cap = 4;
  MetricsRegistry metrics;
  AdmissionController admission(options, 1, &metrics);
  EXPECT_TRUE(admission.KnowsClass(0));
  EXPECT_TRUE(admission.KnowsClass(kReadOnlyClass));
  EXPECT_FALSE(admission.KnowsClass(1));
  EXPECT_FALSE(admission.KnowsClass(-2));

  // Update cap derives from weights: 4 * 8 / (8 + 1) = 3.
  EXPECT_TRUE(admission.TryAdmit(0).admitted);
  EXPECT_TRUE(admission.TryAdmit(0).admitted);
  EXPECT_TRUE(admission.TryAdmit(0).admitted);
  const AdmitDecision refused = admission.TryAdmit(0);
  EXPECT_FALSE(refused.admitted);
  EXPECT_GT(refused.retry_after_ms, 0u);
  admission.Finish(0);
  EXPECT_TRUE(admission.TryAdmit(0).admitted);
  EXPECT_EQ(admission.total_inflight(), 3u);
  EXPECT_EQ(metrics.GetCounter("net_class_c0_admitted").Value(), 4u);
  EXPECT_EQ(metrics.GetCounter("net_class_c0_shed").Value(), 1u);
}

TEST(Admission, ReadOnlyShedsFirstUnderLoad) {
  AdmissionOptions options;
  options.total_inflight_cap = 10;
  options.shed_threshold = 0.5;
  MetricsRegistry metrics;
  AdmissionController admission(options, 1, &metrics);

  // Below the overload threshold both classes are welcome.
  EXPECT_TRUE(admission.TryAdmit(kReadOnlyClass).admitted);
  admission.Finish(kReadOnlyClass);

  for (int i = 0; i < 5; ++i) EXPECT_TRUE(admission.TryAdmit(0).admitted);
  // Past the threshold: Protocol C (weight 1 < floor 2) is refused while
  // update-class traffic still gets the remaining headroom.
  EXPECT_FALSE(admission.TryAdmit(kReadOnlyClass).admitted);
  EXPECT_TRUE(admission.TryAdmit(0).admitted);

  // Pressure released: read-only flows again.
  for (int i = 0; i < 3; ++i) admission.Finish(0);
  EXPECT_TRUE(admission.TryAdmit(kReadOnlyClass).admitted);
}

TEST(Admission, TokenBucketRateLimitsWithRetryHint) {
  AdmissionOptions options;
  options.per_class[0] = ClassPolicy{.weight = 8,
                                     .inflight_cap = 100,
                                     .rate_per_sec = 0.5,
                                     .burst = 1.0};
  options.total_inflight_cap = 100;
  AdmissionController admission(options, 1, nullptr);
  EXPECT_TRUE(admission.TryAdmit(0).admitted);
  const AdmitDecision limited = admission.TryAdmit(0);
  EXPECT_FALSE(limited.admitted);
  // Refilling to one token at 0.5/s takes ~2s; the hint says so.
  EXPECT_GT(limited.retry_after_ms, 1000u);
}

TEST(Admission, CloseRefusesEverything) {
  AdmissionController admission(AdmissionOptions{}, 1, nullptr);
  admission.Close();
  EXPECT_FALSE(admission.TryAdmit(0).admitted);
  EXPECT_FALSE(admission.TryAdmit(kReadOnlyClass).admitted);
}

class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options,
                   SyntheticWorkloadParams params = {}) {
    world_ = MakeServerWorld(ControllerKind::kHdd, params);
    ASSERT_NE(world_, nullptr);
    options.num_classes = params.depth;
    server_ =
        std::make_unique<HddServer>(world_->cc.get(), options, &metrics_);
    const Status status = server_->Start();
    ASSERT_TRUE(status.ok()) << status;
  }

  RequestMsg Submit(std::uint64_t id, ClassId cls,
                    std::vector<WireOp> ops) const {
    RequestMsg msg;
    msg.type = NetMsgType::kSubmit;
    msg.submit.request_id = id;
    msg.submit.txn_class = cls;
    msg.submit.ops = std::move(ops);
    return msg;
  }

  MetricsRegistry metrics_;
  std::unique_ptr<ServerWorld> world_;
  std::unique_ptr<HddServer> server_;
};

TEST_F(NetServerTest, StartStopLeaksNoFds) {
  const int before = CountOpenFds();
  {
    StartServer(ServerOptions{});
    SyncClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    RequestMsg ping;
    ping.type = NetMsgType::kPing;
    ping.request_id = 1;
    const Result<ResponseMsg> pong = client.Call(ping);
    ASSERT_TRUE(pong.ok()) << pong.status();
    EXPECT_EQ(pong->type, NetMsgType::kPong);
    EXPECT_EQ(pong->request_id, 1u);
    client.Close();
    server_->Stop();
    server_.reset();
  }
  EXPECT_EQ(CountOpenFds(), before);
}

TEST_F(NetServerTest, SubmitWritesThenReadsBack) {
  StartServer(ServerOptions{});
  SyncClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  const Result<ResponseMsg> write = client.Call(Submit(
      1, 0, {{WireOp::Kind::kWrite, {0, 3}, 42}}));
  ASSERT_TRUE(write.ok()) << write.status();
  EXPECT_EQ(write->type, NetMsgType::kResult);
  EXPECT_TRUE(write->committed);

  const Result<ResponseMsg> read = client.Call(Submit(
      2, 0, {{WireOp::Kind::kRead, {0, 3}, 0}}));
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->type, NetMsgType::kResult);
  EXPECT_TRUE(read->committed);
  ASSERT_EQ(read->values.size(), 1u);
  EXPECT_EQ(read->values[0], 42);
  server_->Stop();
}

TEST_F(NetServerTest, PipelinedRequestsAllAnswered) {
  StartServer(ServerOptions{});
  SyncClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  constexpr int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    const std::uint32_t g = static_cast<std::uint32_t>(i % 64);
    ASSERT_TRUE(client
                    .Send(Submit(static_cast<std::uint64_t>(i), 0,
                                 {{WireOp::Kind::kWrite, {0, g}, i},
                                  {WireOp::Kind::kRead, {0, g}, 0}}))
                    .ok());
  }
  std::set<std::uint64_t> answered;
  for (int i = 0; i < kRequests; ++i) {
    const Result<ResponseMsg> msg = client.Recv();
    ASSERT_TRUE(msg.ok()) << msg.status();
    EXPECT_EQ(msg->type, NetMsgType::kResult);
    EXPECT_TRUE(msg->committed);
    answered.insert(msg->request_id);
  }
  EXPECT_EQ(answered.size(), static_cast<std::size_t>(kRequests));
  EXPECT_EQ(metrics_.GetCounter("net_committed").Value(),
            static_cast<std::uint64_t>(kRequests));
  server_->Stop();
}

TEST_F(NetServerTest, ProtocolCShedsBeforeUpdateClasses) {
  // An update backlog held past the 50% overload threshold (workers
  // paused, so the backlog cannot race away on a one-core host): every
  // Protocol C read must bounce with a retry-after hint while
  // update-class traffic keeps being admitted; once pressure releases,
  // read-only traffic flows again.
  auto pause = std::make_shared<std::atomic<bool>>(true);
  ServerOptions options;
  options.num_workers = 1;
  options.admission.total_inflight_cap = 20;
  options.admission.shed_threshold = 0.5;
  options.per_connection_inflight_cap = 64;
  options.test_pause_workers = pause;
  SyntheticWorkloadParams params;
  params.depth = 1;
  StartServer(options, params);

  SyncClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  constexpr int kUpdates = 12;  // past the threshold (10), under the
                                // update-class cap (20 * 8/9 = 17)
  constexpr int kReads = 10;
  for (int i = 0; i < kUpdates; ++i) {
    ASSERT_TRUE(client
                    .Send(Submit(static_cast<std::uint64_t>(i), 0,
                                 {{WireOp::Kind::kWrite,
                                   {0, static_cast<std::uint32_t>(i % 64)},
                                   i}}))
                    .ok());
  }
  // The RO submits trail the updates on the same connection, so they hit
  // admission only after all 12 updates are in the (frozen) backlog.
  for (int i = 0; i < kReads; ++i) {
    RequestMsg msg;
    msg.type = NetMsgType::kSubmit;
    msg.submit.request_id = static_cast<std::uint64_t>(1000 + i);
    msg.submit.read_only = true;
    msg.submit.ops = {{WireOp::Kind::kRead, {0, 0}, 0}};
    ASSERT_TRUE(client.Send(msg).ok());
  }

  // The shed responses arrive while the backlog is still frozen.
  int ro_overload = 0;
  for (int i = 0; i < kReads; ++i) {
    const Result<ResponseMsg> msg = client.Recv();
    ASSERT_TRUE(msg.ok()) << msg.status();
    ASSERT_EQ(msg->type, NetMsgType::kOverload) << "id " << msg->request_id;
    EXPECT_GE(msg->request_id, 1000u);  // only the RO traffic was refused
    EXPECT_GT(msg->retry_after_ms, 0u);
    ++ro_overload;
  }
  EXPECT_EQ(ro_overload, kReads);

  // Release the workers: the admitted updates all commit.
  pause->store(false);
  int update_committed = 0;
  for (int i = 0; i < kUpdates; ++i) {
    const Result<ResponseMsg> msg = client.Recv();
    ASSERT_TRUE(msg.ok()) << msg.status();
    EXPECT_EQ(msg->type, NetMsgType::kResult);
    EXPECT_LT(msg->request_id, 1000u);
    if (msg->committed) ++update_committed;
  }
  EXPECT_EQ(update_committed, kUpdates);
  EXPECT_EQ(metrics_.GetCounter("net_class_ro_shed").Value(),
            static_cast<std::uint64_t>(kReads));
  EXPECT_EQ(metrics_.GetCounter("net_class_c0_shed").Value(), 0u);

  // Pressure released: Protocol C is served again.
  RequestMsg ro;
  ro.type = NetMsgType::kSubmit;
  ro.submit.request_id = 2000;
  ro.submit.read_only = true;
  ro.submit.ops = {{WireOp::Kind::kRead, {0, 0}, 0}};
  const Result<ResponseMsg> served = client.Call(ro);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->type, NetMsgType::kResult);
  EXPECT_TRUE(served->committed);
  server_->Stop();
}

TEST_F(NetServerTest, BackpressureBoundsServerQueues) {
  // Per-connection inflight cap 4, total cap 8: a 300-request pipelined
  // burst must flow through without the server's queue gauge ever needing
  // more than the admission bound — excess bytes wait in the socket.
  ServerOptions options;
  options.num_workers = 2;
  options.per_connection_inflight_cap = 4;
  options.admission.total_inflight_cap = 8;
  // One update class: its derived admission cap (8 * 8/9 = 7) sits above
  // the per-connection cap, so the pause-reads path — not shedding — is
  // what bounds the flow.
  SyntheticWorkloadParams params;
  params.depth = 1;
  StartServer(options, params);

  SyncClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  constexpr int kRequests = 300;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client
                    .Send(Submit(static_cast<std::uint64_t>(i), 0,
                                 {{WireOp::Kind::kWrite,
                                   {0, static_cast<std::uint32_t>(i % 64)},
                                   i}}))
                    .ok());
  }
  int committed = 0, overload = 0;
  for (int i = 0; i < kRequests; ++i) {
    const Result<ResponseMsg> msg = client.Recv();
    ASSERT_TRUE(msg.ok()) << msg.status() << " after " << i;
    if (msg->type == NetMsgType::kResult && msg->committed) ++committed;
    if (msg->type == NetMsgType::kOverload) ++overload;
  }
  // With the pipeline paused at 4 inflight, admission never sees more
  // than the per-connection cap — nothing is shed, nothing queues deep.
  EXPECT_EQ(committed, kRequests);
  EXPECT_EQ(overload, 0);
  EXPECT_EQ(metrics_.GetGauge("net_queue_depth").Value(), 0u);
  server_->Stop();
}

TEST_F(NetServerTest, CorruptFrameClosesConnection) {
  StartServer(ServerOptions{});
  SyncClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  // Prove the connection is live first.
  RequestMsg ping;
  ping.type = NetMsgType::kPing;
  ping.request_id = 1;
  ASSERT_TRUE(client.Call(ping).ok());

  // Now write a frame whose payload fails the CRC: the server must treat
  // the stream as garbage and close the connection, not answer.
  std::string frame;
  AppendNetFrame(&frame, "hello");
  frame[frame.size() - 1] = static_cast<char>(frame[frame.size() - 1] ^ 0x1);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::write(client.fd(), frame.data() + off, frame.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
  const Result<ResponseMsg> reply = client.Recv();
  EXPECT_FALSE(reply.ok());  // EOF: connection closed by server
  EXPECT_GE(metrics_.GetCounter("net_protocol_errors").Value(), 1u);
  server_->Stop();
  EXPECT_EQ(server_->connection_count(), 0u);
}

TEST_F(NetServerTest, MalformedPayloadAnswersErrorUnknownClassToo) {
  StartServer(ServerOptions{});  // num_classes = depth = 4
  SyncClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  // Structurally valid submit naming a class the server does not serve
  // -> kError, and the connection survives.
  const Result<ResponseMsg> error =
      client.Call(Submit(1, 99, {{WireOp::Kind::kWrite, {0, 0}, 1}}));
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_EQ(error->type, NetMsgType::kError);
  // Connection still serves valid traffic afterwards.
  const Result<ResponseMsg> good =
      client.Call(Submit(2, 0, {{WireOp::Kind::kWrite, {0, 0}, 1}}));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->type, NetMsgType::kResult);
  server_->Stop();
}

TEST_F(NetServerTest, EpochBackendAnswersPipelinedTraffic) {
  ServerOptions options;
  options.backend = ServerOptions::Backend::kEpoch;
  options.epoch_size = 16;
  options.num_workers = 2;
  StartServer(options);
  SyncClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  constexpr int kRequests = 50;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client
                    .Send(Submit(static_cast<std::uint64_t>(i), i % 4,
                                 {{WireOp::Kind::kWrite,
                                   {i % 4, static_cast<std::uint32_t>(i % 64)},
                                   i}}))
                    .ok());
  }
  int committed = 0;
  for (int i = 0; i < kRequests; ++i) {
    const Result<ResponseMsg> msg = client.Recv();
    ASSERT_TRUE(msg.ok()) << msg.status();
    if (msg->type == NetMsgType::kResult && msg->committed) ++committed;
  }
  EXPECT_EQ(committed, kRequests);
  server_->Stop();
}

TEST_F(NetServerTest, LoadDriverRoundTripAndGracefulStop) {
  ServerOptions options;
  options.num_io_threads = 2;
  options.num_workers = 2;
  StartServer(options);
  DriverOptions driver;
  driver.port = server_->port();
  driver.connections = 50;
  driver.pipeline = 4;
  driver.requests_per_connection = 20;
  SyntheticWorkloadParams params;  // depth 4, matches StartServer default
  driver.make_request = [&params](std::size_t, std::uint64_t, Rng& rng) {
    return MakeSyntheticRequest(params, rng);
  };
  const DriverStats stats = RunLoadDriver(driver);
  EXPECT_EQ(stats.connected, 50u);
  EXPECT_EQ(stats.responses, 50u * 20u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.committed, 0u);
  EXPECT_EQ(stats.committed + stats.failed + stats.overload, stats.responses);
  server_->Stop();
  EXPECT_EQ(server_->connection_count(), 0u);
  EXPECT_EQ(metrics_.GetGauge("net_connections").Value(), 0u);
}

}  // namespace
}  // namespace hdd
