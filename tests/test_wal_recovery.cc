// End-to-end durability tests: HddController running over an attached
// WalManager, crashed via the SimWalStorage loss model, recovered with
// RecoverDatabase, and restarted (control state + clock + ticket
// handoff). The byte-level format tests live in test_wal_format.cc; the
// randomized model-checked sweeps in test_sim_explore.cc.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "hdd/hdd_controller.h"
#include "wal/recovery.h"
#include "wal/wal_manager.h"
#include "wal/wal_storage.h"

namespace hdd {
namespace {

// The paper's Figure 2 inventory hierarchy:
// events(0) <- inventory(1) <- orders(2) <- suppliers(3).
PartitionSpec InventorySpec() {
  PartitionSpec spec;
  spec.segment_names = {"events", "inventory", "orders", "suppliers"};
  spec.transaction_types = {
      {"log_event", 0, {}},
      {"post_inventory", 1, {0}},
      {"reorder", 2, {0, 1}},
      {"supplier_profile", 3, {0, 2}},
  };
  return spec;
}

constexpr int kSegments = 4;
constexpr std::uint32_t kGranules = 2;

// One full durable system: storage is injected so it can outlive a
// "crash" of everything else.
struct System {
  std::unique_ptr<Database> db;
  std::unique_ptr<WalManager> wal;
  std::unique_ptr<HierarchySchema> schema;
  LogicalClock clock;
  std::unique_ptr<HddController> cc;
};

std::unique_ptr<System> BootSystem(WalStorage* storage, WalOptions options) {
  auto sys = std::make_unique<System>();
  sys->db = std::make_unique<Database>(kSegments, kGranules, 0);
  auto wal = WalManager::Open(storage, kSegments, options);
  EXPECT_TRUE(wal.ok());
  sys->wal = std::move(wal).value();
  sys->db->AttachWal(sys->wal.get());
  auto schema = HierarchySchema::Create(InventorySpec());
  EXPECT_TRUE(schema.ok());
  sys->schema = std::make_unique<HierarchySchema>(std::move(schema).value());
  sys->cc = std::make_unique<HddController>(sys->db.get(), &sys->clock,
                                            sys->schema.get());
  return sys;
}

// Runs one committed single-write transaction; returns its id.
TxnId CommitOne(HddController* cc, ClassId cls, GranuleRef ref, Value value) {
  auto txn = cc->Begin({.txn_class = cls});
  EXPECT_TRUE(txn.ok());
  EXPECT_TRUE(cc->Write(*txn, ref, value).ok());
  EXPECT_TRUE(cc->Commit(*txn).ok());
  return txn->id;
}

// The durable image of a pre-crash chain: committed versions whose
// creator is the initial version or a durably committed transaction.
std::vector<Version> DurableImage(const Granule& g,
                                  const std::set<TxnId>& durable) {
  std::vector<Version> out;
  for (const Version& v : g.versions()) {
    if (!v.committed) continue;
    if (v.creator != kInvalidTxn && durable.count(v.creator) == 0) continue;
    out.push_back(v);
  }
  return out;
}

void ExpectChainsMatchDurableImage(const Database& before,
                                   const Database& after,
                                   const std::set<TxnId>& durable) {
  for (int s = 0; s < before.num_segments(); ++s) {
    for (std::uint32_t g = 0; g < before.segment(s).size(); ++g) {
      const auto want = DurableImage(before.segment(s).granule(g), durable);
      const auto& got = after.segment(s).granule(g).versions();
      ASSERT_EQ(got.size(), want.size()) << "segment " << s << " granule " << g;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].order_key, want[i].order_key);
        EXPECT_EQ(got[i].wts, want[i].wts);
        EXPECT_EQ(got[i].value, want[i].value);
        EXPECT_EQ(got[i].creator, want[i].creator);
        EXPECT_TRUE(got[i].committed);
      }
    }
  }
}

TEST(WalEndToEnd, AckedCommitsSurviveACrash) {
  SimWalStorage storage;
  WalOptions options;
  options.group.mode = WalSyncMode::kPerCommit;
  auto sys = BootSystem(&storage, options);

  std::set<TxnId> committed;
  committed.insert(CommitOne(sys->cc.get(), 0, GranuleRef{0, 0}, 11));
  committed.insert(CommitOne(sys->cc.get(), 1, GranuleRef{1, 1}, 22));
  committed.insert(CommitOne(sys->cc.get(), 0, GranuleRef{0, 0}, 33));
  committed.insert(CommitOne(sys->cc.get(), 3, GranuleRef{3, 0}, 44));

  // One transaction is mid-flight (its write is logged but uncommitted)
  // when the machine dies.
  auto doomed = sys->cc->Begin({.txn_class = 2});
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(sys->cc->Write(*doomed, GranuleRef{2, 0}, 666).ok());

  Rng rng(4242);
  storage.Crash(rng);

  auto recovered = std::make_unique<Database>(kSegments, kGranules, 0);
  const auto report = RecoverDatabase(&storage, recovered.get());
  ASSERT_TRUE(report.ok());
  // Every commit was acked under kPerCommit, so every one is durable.
  for (const TxnId t : committed) {
    EXPECT_EQ(report->durable_commits.count(t), 1u) << "txn " << t;
  }
  EXPECT_EQ(report->durable_commits.count(doomed->id), 0u);
  ExpectChainsMatchDurableImage(*sys->db, *recovered,
                                report->durable_commits);
  EXPECT_GE(report->max_timestamp, 1u);
  EXPECT_EQ(recovered->segment(2).granule(0).Find(doomed->init_ts), nullptr);
}

TEST(WalEndToEnd, RestartRunsOnTopOfRecoveredState) {
  SimWalStorage storage;
  WalOptions options;
  options.group.mode = WalSyncMode::kPerCommit;
  std::set<TxnId> first_era;
  Timestamp last_init_ts = 0;
  {
    auto sys = BootSystem(&storage, options);
    first_era.insert(CommitOne(sys->cc.get(), 0, GranuleRef{0, 0}, 7));
    auto txn = sys->cc->Begin({.txn_class = 1});
    ASSERT_TRUE(txn.ok());
    last_init_ts = txn->init_ts;
    ASSERT_TRUE(sys->cc->Write(*txn, GranuleRef{1, 0}, 8).ok());
    ASSERT_TRUE(sys->cc->Commit(*txn).ok());
    first_era.insert(txn->id);
    Rng rng(99);
    storage.Crash(rng);
  }

  // Reboot: recover into a fresh database, seed the WAL's ticket sequence
  // from the frontier, advance the clock past everything recovered, and
  // restore control state (empty here — no checkpoint was ever taken).
  auto recovered = std::make_unique<Database>(kSegments, kGranules, 0);
  const auto report = RecoverDatabase(&storage, recovered.get());
  ASSERT_TRUE(report.ok());
  // The recovered clock floor covers every logged initiation time (order
  // keys can never collide). Commit-tick timestamps are not logged — they
  // carry no externally visible obligation, so re-issuing them is fine.
  EXPECT_GE(report->max_timestamp, last_init_ts);

  WalOptions reopened = options;
  reopened.initial_ticket = report->frontier_ticket;
  auto wal = WalManager::Open(&storage, kSegments, reopened);
  ASSERT_TRUE(wal.ok());
  recovered->AttachWal(wal->get());
  auto schema = HierarchySchema::Create(InventorySpec());
  ASSERT_TRUE(schema.ok());
  LogicalClock clock;
  clock.AdvanceTo(report->max_timestamp);
  HddController cc(recovered.get(), &clock, &*schema);
  ASSERT_TRUE(cc.RestoreControlState(report->control_state).ok());

  // Second era: new transactions read the recovered state and extend it.
  auto reader = cc.Begin({.txn_class = 1});
  ASSERT_TRUE(reader.ok());
  EXPECT_GT(reader->init_ts, report->max_timestamp);
  auto seen = cc.Read(*reader, GranuleRef{0, 0});
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(*seen, 7);
  ASSERT_TRUE(cc.Commit(*reader).ok());
  const TxnId second = CommitOne(&cc, 0, GranuleRef{0, 0}, 9);

  // Crash again: BOTH eras' acked commits must recover, which exercises
  // the reopened ticket sequence staying dense across incarnations.
  Rng rng2(100);
  storage.Crash(rng2);
  auto recovered2 = std::make_unique<Database>(kSegments, kGranules, 0);
  const auto report2 = RecoverDatabase(&storage, recovered2.get());
  ASSERT_TRUE(report2.ok());
  for (const TxnId t : first_era) {
    EXPECT_EQ(report2->durable_commits.count(t), 1u);
  }
  EXPECT_EQ(report2->durable_commits.count(second), 1u);
  EXPECT_GT(report2->frontier_ticket, report->frontier_ticket);
  const Version* latest =
      recovered2->segment(0).granule(0).LatestCommitted();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->value, 9);
}

TEST(WalEndToEnd, CheckpointBoundsReplayAndCarriesControlState) {
  SimWalStorage storage;
  WalOptions options;
  options.group.mode = WalSyncMode::kPerCommit;
  auto sys = BootSystem(&storage, options);

  CommitOne(sys->cc.get(), 0, GranuleRef{0, 0}, 1);
  CommitOne(sys->cc.get(), 1, GranuleRef{1, 0}, 2);
  // Release a wall so the control state has something non-trivial in it.
  ASSERT_TRUE(sys->cc->ReleaseNewWall().ok());
  const std::size_t walls_before = sys->cc->num_walls();
  ASSERT_GE(walls_before, 1u);

  ASSERT_TRUE(sys->cc->CheckpointWal().ok());
  const auto checkpoint_metric = sys->wal->metrics().checkpoints.load();
  EXPECT_GE(checkpoint_metric, 1u);

  // Post-checkpoint work: only THIS should need replaying.
  const TxnId late = CommitOne(sys->cc.get(), 0, GranuleRef{0, 1}, 3);

  Rng rng(7);
  storage.Crash(rng);
  auto recovered = std::make_unique<Database>(kSegments, kGranules, 0);
  const auto report = RecoverDatabase(&storage, recovered.get());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->control_state.empty());
  EXPECT_EQ(report->durable_commits.count(late), 1u);
  // The pre-checkpoint transactions come from the snapshots; the replay
  // touches only the suffix (txn `late`: one write + one commit).
  EXPECT_LE(report->replayed_records, 3u);
  ExpectChainsMatchDurableImage(*sys->db, *recovered,
                                report->durable_commits);

  // The restored controller carries the released wall across the crash.
  auto schema = HierarchySchema::Create(InventorySpec());
  ASSERT_TRUE(schema.ok());
  LogicalClock clock;
  clock.AdvanceTo(report->max_timestamp);
  HddController cc(recovered.get(), &clock, &*schema);
  ASSERT_TRUE(cc.RestoreControlState(report->control_state).ok());
  EXPECT_EQ(cc.num_walls(), walls_before);

  // A read-only transaction under the restored wall sees a consistent
  // pre-checkpoint cut.
  auto ro = cc.Begin({.txn_class = kReadOnlyClass, .read_only = true});
  ASSERT_TRUE(ro.ok());
  EXPECT_TRUE(cc.Read(*ro, GranuleRef{0, 0}).ok());
  ASSERT_TRUE(cc.Commit(*ro).ok());
}

TEST(WalEndToEnd, RestoreControlStateRejectsMismatchedShape) {
  SimWalStorage storage;
  auto sys = BootSystem(&storage, WalOptions{});
  CommitOne(sys->cc.get(), 0, GranuleRef{0, 0}, 1);
  const std::string blob = sys->cc->ExportControlState();
  ASSERT_FALSE(blob.empty());

  // A two-segment schema has a different class count: restoring the
  // four-class blob must fail loudly, not silently misattribute state.
  PartitionSpec two;
  two.segment_names = {"a", "b"};
  two.transaction_types = {{"ta", 0, {}}, {"tb", 1, {0}}};
  auto schema = HierarchySchema::Create(two);
  ASSERT_TRUE(schema.ok());
  Database db(2, kGranules, 0);
  LogicalClock clock;
  HddController cc(&db, &clock, &*schema);
  EXPECT_FALSE(cc.RestoreControlState(blob).ok());
  EXPECT_FALSE(cc.RestoreControlState("garbage-blob").ok());
  EXPECT_TRUE(cc.RestoreControlState("").ok());  // empty = no-op
}

TEST(WalEndToEnd, AllSyncModesCommitAndRecover) {
  for (const WalSyncMode mode :
       {WalSyncMode::kNone, WalSyncMode::kGroupCommit,
        WalSyncMode::kPerCommit}) {
    SimWalStorage storage;
    WalOptions options;
    options.group.mode = mode;
    TxnId last = kInvalidTxn;
    {
      auto sys = BootSystem(&storage, options);
      for (int i = 0; i < 5; ++i) {
        last = CommitOne(sys->cc.get(), 0, GranuleRef{0, 0},
                         100 + i);
      }
      if (mode == WalSyncMode::kNone) {
        EXPECT_EQ(sys->wal->metrics().fsyncs.load(), 0u);
      } else {
        EXPECT_GE(sys->wal->metrics().fsyncs.load(), 1u);
      }
    }
    // No crash: even under kNone the buffered bytes are still readable,
    // so recovery reconstructs the full history in every mode.
    auto recovered = std::make_unique<Database>(kSegments, kGranules, 0);
    const auto report = RecoverDatabase(&storage, recovered.get());
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->durable_commits.count(last), 1u);
    const Version* tip = recovered->segment(0).granule(0).LatestCommitted();
    ASSERT_NE(tip, nullptr);
    EXPECT_EQ(tip->value, 104);
  }
}

TEST(WalEndToEnd, ReadOnlyAckIsDurableAgainstClockRewind) {
  // A read-only commit logs a kReadBound marker before its ack, so after
  // a crash the clock floor (max_timestamp) is at or above the bound the
  // reader observed — a post-recovery writer can never slip a version
  // underneath an answer already handed to the outside world.
  SimWalStorage storage;
  WalOptions options;
  options.group.mode = WalSyncMode::kPerCommit;
  auto sys = BootSystem(&storage, options);
  CommitOne(sys->cc.get(), 0, GranuleRef{0, 0}, 5);

  auto ro = sys->cc->Begin({.txn_class = kReadOnlyClass, .read_only = true});
  ASSERT_TRUE(ro.ok());
  ASSERT_TRUE(sys->cc->Read(*ro, GranuleRef{0, 0}).ok());
  ASSERT_TRUE(sys->cc->Commit(*ro).ok());
  const Timestamp acked_at = sys->clock.Now();

  Rng rng(321);
  storage.Crash(rng);
  auto recovered = std::make_unique<Database>(kSegments, kGranules, 0);
  const auto report = RecoverDatabase(&storage, recovered.get());
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->max_timestamp, acked_at);
}

}  // namespace
}  // namespace hdd
