// E over zig-zag undirected critical paths (up-down-up alternations) —
// the shapes the §5.1 recursion must compose correctly — with
// hand-computed expectations and randomized wall-consistency probes.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "hdd/link_functions.h"
#include "hdd/time_wall.h"

namespace hdd {
namespace {

// W-shaped THG over 5 classes whose UCP from 0 to 4 alternates
// direction at every step (a -> b <- c -> d <- e, peaks at 1 and 3,
// valley at 2). Arcs point lower -> higher:
//
//        1       3
//       . .     . .
//      0   .   .   4       arcs: 0 -> 1, 2 -> 1, 2 -> 3, 4 -> 3
//            2
Digraph ZigZag() {
  Digraph g(5);
  g.AddArc(0, 1);  // class 0 reads 1: 1 higher
  g.AddArc(2, 1);  // class 2 reads 1
  g.AddArc(2, 3);  // class 2 reads 3: 3 higher
  g.AddArc(4, 3);  // class 4 reads 3
  return g;
}

class ZigZagTest : public ::testing::Test {
 protected:
  void Build() {
    auto tst = TstAnalysis::Create(ZigZag());
    ASSERT_TRUE(tst.ok());
    tst_ = std::make_unique<TstAnalysis>(std::move(tst).value());
    tables_.clear();
    tables_.resize(5);
    eval_ = std::make_unique<ActivityLinkEvaluator>(tst_.get(), &tables_);
  }

  std::unique_ptr<TstAnalysis> tst_;
  std::vector<ClassActivityTable> tables_;
  std::unique_ptr<ActivityLinkEvaluator> eval_;
};

TEST_F(ZigZagTest, StructureIsTst) {
  EXPECT_TRUE(IsTransitiveSemiTree(ZigZag()));
  Build();
  // UCP 0..4 passes through every class.
  auto ucp = tst_->Ucp(0, 4);
  ASSERT_TRUE(ucp.has_value());
  EXPECT_EQ(*ucp, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST_F(ZigZagTest, EIdleIsIdentityEverywhere) {
  Build();
  for (ClassId target = 0; target < 5; ++target) {
    auto e = eval_->E(0, target, 33);
    ASSERT_TRUE(e.ok()) << "target " << target << ": " << e.status();
    EXPECT_EQ(*e, 33u) << "target " << target;
  }
}

TEST_F(ZigZagTest, EUpThenDownHandComputed) {
  Build();
  // Walk 0 -> 1 (up) -> 2 (down).
  // Class 1: txn [5, 40) straddles everything relevant.
  tables_[1].OnBegin(5);
  tables_[1].OnFinish(5, 40);
  // E_0^1(10) = I_old_1(10) = 5.
  auto e1 = eval_->E(0, 1, 10);
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(*e1, 5u);
  // Descent 1 -> 2 applies C^late at the run's top (class 1), excluding
  // the bottom: E_0^2(10) = C_late_1(I_old_1(10)) = C_late_1(5) = 5
  // (the [5,40) txn is not active AT 5 since activity needs I < m).
  auto e2 = eval_->E(0, 2, 10);
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(*e2, 5u);
}

TEST_F(ZigZagTest, EFullZigZagComputes) {
  Build();
  // Populate finished activity in every class so all C^late computable.
  Timestamp now = 1;
  Rng rng(5);
  for (auto& table : tables_) {
    for (int i = 0; i < 6; ++i) {
      const Timestamp begin = ++now;
      table.OnBegin(begin);
      table.OnFinish(begin, begin + 1 + rng.NextBounded(4));
      now += 2;
    }
  }
  const Timestamp m = now + 1;
  auto e = eval_->E(0, 4, m);
  ASSERT_TRUE(e.ok()) << e.status();
  // At a quiescent m beyond all activity, every hop is the identity.
  EXPECT_EQ(*e, m);

  // At an interior m the value is defined and the full wall computes.
  const Timestamp interior = now / 2;
  auto wall = ComputeTimeWall(*eval_, 5, PickWallAnchor(*tst_), interior);
  ASSERT_TRUE(wall.ok()) << wall.status();
  EXPECT_EQ(wall->bound.size(), 5u);
  for (Timestamp b : wall->bound) {
    EXPECT_GT(b, 0u);
  }
}

TEST_F(ZigZagTest, EBusyWhileDescentBlocked) {
  Build();
  // An ACTIVE txn in peak class 1 makes the descent 1 -> 2 incomputable.
  tables_[1].OnBegin(5);
  auto e = eval_->E(0, 2, 10);
  EXPECT_EQ(e.status().code(), StatusCode::kBusy);
  // The ascent-only target still computes.
  EXPECT_TRUE(eval_->E(0, 1, 10).ok());
  tables_[1].OnFinish(5, 12);
  EXPECT_TRUE(eval_->E(0, 2, 10).ok());
}

TEST_F(ZigZagTest, AnchorMinimizesDescents) {
  Build();
  // From class 2 (the valley) both peaks are reachable ascending; the
  // anchor heuristic must pick it (most classes strictly higher).
  EXPECT_EQ(PickWallAnchor(*tst_), 2);
}

}  // namespace
}  // namespace hdd
