#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "dist/activity_slice.h"
#include "dist/dist_message.h"
#include "dist/shard_map.h"
#include "hdd/hdd_controller.h"
#include "hdd/link_functions.h"
#include "storage/database.h"

namespace hdd {
namespace {

TEST(ShardMapTest, ContiguousSplit) {
  ShardMap map = ShardMap::Contiguous(4, 2);
  EXPECT_EQ(map.num_nodes(), 2);
  EXPECT_EQ(map.num_segments(), 4);
  EXPECT_EQ(map.home(0), 0);
  EXPECT_EQ(map.home(1), 0);
  EXPECT_EQ(map.home(2), 1);
  EXPECT_EQ(map.home(3), 1);
  // Owner defaults to home.
  for (SegmentId s = 0; s < 4; ++s) EXPECT_EQ(map.owner(s), map.home(s));
  EXPECT_EQ(map.SegmentsOwnedBy(0), (std::vector<SegmentId>{0, 1}));
  EXPECT_EQ(map.ClassesHomedAt(1), (std::vector<ClassId>{2, 3}));
}

TEST(ShardMapTest, UnevenSplitCoversEverySegment) {
  ShardMap map = ShardMap::Contiguous(7, 3);
  std::vector<int> seen(7, 0);
  for (int n = 0; n < 3; ++n) {
    for (SegmentId s : map.SegmentsOwnedBy(n)) seen[s]++;
  }
  for (SegmentId s = 0; s < 7; ++s) EXPECT_EQ(seen[s], 1) << "segment " << s;
  // Contiguity: the home assignment never decreases with the class id.
  for (SegmentId s = 1; s < 7; ++s) EXPECT_GE(map.home(s), map.home(s - 1));
}

TEST(ShardMapTest, EveryNodeHomesAtLeastOneClass) {
  // 4 classes over 3 nodes starved the tail node under a ceil-split; the
  // balanced split must leave no node without a class to run transactions
  // of.
  for (int nodes = 1; nodes <= 4; ++nodes) {
    ShardMap map = ShardMap::Contiguous(4, nodes);
    for (int n = 0; n < nodes; ++n) {
      EXPECT_FALSE(map.ClassesHomedAt(n).empty())
          << nodes << " nodes: node " << n << " homes no class";
    }
  }
}

TEST(ShardMapTest, OwnerOverrideSeparatesHomeAndOwner) {
  ShardMap map = ShardMap::Contiguous(4, 2);
  map.SetSegmentOwner(3, 0);
  EXPECT_EQ(map.home(3), 1);   // class still registers at its home
  EXPECT_EQ(map.owner(3), 0);  // chains live elsewhere -> 2PC commits
  EXPECT_EQ(map.SegmentsOwnedBy(0), (std::vector<SegmentId>{0, 1, 3}));
  EXPECT_EQ(map.SegmentsOwnedBy(1), (std::vector<SegmentId>{2}));
}

TEST(DistCodecTest, ActivityReqRoundTrip) {
  ActivityReq req;
  req.frontier = 4711;
  req.classes = {0, 3, 5};
  const std::string wire = EncodeActivityReq(req);
  EXPECT_EQ(PeekDistMsgType(wire), DistMsgType::kActivityReq);
  auto got = DecodeActivityReq(wire);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->frontier, req.frontier);
  EXPECT_EQ(got->classes, req.classes);
}

TEST(DistCodecTest, SnapshotReqRoundTrip) {
  SnapshotReq req;
  req.segment = 2;
  req.index = 9;
  auto got = DecodeSnapshotReq(EncodeSnapshotReq(req));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->segment, req.segment);
  EXPECT_EQ(got->index, req.index);
}

TEST(DistCodecTest, PrepareReqRoundTrip) {
  PrepareReq req;
  req.txn = (7ull << 32) + 42;
  req.init_ts = 1234;
  req.segment = 1;
  req.writes = {{0, 17}, {2, -5}};
  auto got = DecodePrepareReq(EncodePrepareReq(req));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->txn, req.txn);
  EXPECT_EQ(got->init_ts, req.init_ts);
  EXPECT_EQ(got->segment, req.segment);
  EXPECT_EQ(got->writes, req.writes);
}

TEST(DistCodecTest, TxnSegmentReqRoundTripBothTypes) {
  TxnSegmentReq req;
  req.txn = 99;
  req.init_ts = 1000;
  req.segment = 3;
  for (DistMsgType type : {DistMsgType::kCommitReq, DistMsgType::kAbortReq}) {
    const std::string wire = EncodeTxnSegmentReq(type, req);
    EXPECT_EQ(PeekDistMsgType(wire), type);
    auto got = DecodeTxnSegmentReq(wire);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->txn, req.txn);
    EXPECT_EQ(got->init_ts, req.init_ts);
    EXPECT_EQ(got->segment, req.segment);
  }
}

TEST(DistCodecTest, SlicesRoundTrip) {
  ActivitySlice a;
  a.class_id = 1;
  a.frontier = 500;
  a.active = {100, 220};
  a.finished = {{10, 50}, {60, 90}};
  ActivitySlice b;
  b.class_id = 4;
  b.frontier = 500;
  auto got = DecodeSlices(EncodeSlices({a, b}));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ((*got)[0].class_id, a.class_id);
  EXPECT_EQ((*got)[0].frontier, a.frontier);
  EXPECT_EQ((*got)[0].active, a.active);
  EXPECT_EQ((*got)[0].finished, a.finished);
  EXPECT_EQ((*got)[1].class_id, b.class_id);
  EXPECT_TRUE((*got)[1].active.empty());
  EXPECT_TRUE((*got)[1].finished.empty());
}

TEST(DistCodecTest, VersionsRoundTripMarksCommitted) {
  Version v1;
  v1.order_key = 10;
  v1.wts = 10;
  v1.rts = 12;
  v1.creator = 3;
  v1.value = 77;
  v1.committed = true;
  Version v2 = v1;
  v2.order_key = 20;
  v2.wts = 20;
  v2.value = -9;
  auto got = DecodeVersions(EncodeVersions({v1, v2}));
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ((*got)[0].order_key, v1.order_key);
  EXPECT_EQ((*got)[0].value, v1.value);
  EXPECT_EQ((*got)[1].order_key, v2.order_key);
  EXPECT_EQ((*got)[1].value, v2.value);
  EXPECT_TRUE((*got)[0].committed);
  EXPECT_TRUE((*got)[1].committed);
}

TEST(DistCodecTest, ResponseEnvelope) {
  auto ok = DecodeDistResponse(EncodeDistResponse(std::string("payload")));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "payload");

  auto err = DecodeDistResponse(
      EncodeDistResponse(Result<std::string>(Status::Busy("try later"))));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kBusy);
  EXPECT_EQ(err.status().message(), "remote: try later");
}

TEST(DistCodecTest, TruncatedPayloadsAreRejected) {
  const std::string wire = EncodePrepareReq(
      PrepareReq{12, 34, 1, {{0, 1}, {1, 2}}});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(DecodePrepareReq(wire.substr(0, len)).ok()) << len;
  }
  const std::string slices = EncodeSlices(
      {ActivitySlice{0, 100, {50}, {{10, 20}}}});
  for (std::size_t len = 0; len < slices.size(); ++len) {
    EXPECT_FALSE(DecodeSlices(slices.substr(0, len)).ok()) << len;
  }
  EXPECT_FALSE(DecodeDistResponse(std::string_view()).ok());
}

// A slice rebuilt through the wire codec must answer I^old / C^late at
// every time at or below its frontier exactly like the live table.
TEST(SliceSourceTest, RebuiltTableMatchesDirectTable) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    ClassActivityTable direct;
    std::vector<Timestamp> active;
    Timestamp now = 0;
    for (int event = 0; event < 60; ++event) {
      if (!active.empty() && rng.NextBool(0.45)) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.NextBounded(active.size()));
        direct.OnFinish(active[pick], ++now);
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        direct.OnBegin(++now);
        active.push_back(now);
      }
    }
    const Timestamp frontier = now + 1;
    ActivitySlice slice;
    slice.class_id = 0;
    slice.frontier = frontier;
    slice.active.assign(direct.active().begin(), direct.active().end());
    slice.finished.assign(direct.finished().begin(),
                          direct.finished().end());
    auto decoded = DecodeSlices(EncodeSlices({slice}));
    ASSERT_TRUE(decoded.ok());
    SliceSource source;
    source.Install((*decoded)[0]);
    ASSERT_TRUE(source.Has(0));
    for (Timestamp m = 0; m <= frontier; ++m) {
      EXPECT_EQ(source.OldestActiveAt(0, m), direct.OldestActiveAt(m))
          << "seed " << seed << " m " << m;
      auto from_slice = source.LatestEndAt(0, m);
      auto from_direct = direct.LatestEndAt(m);
      EXPECT_EQ(from_slice.ok(), from_direct.ok());
      if (from_slice.ok() && from_direct.ok()) {
        EXPECT_EQ(*from_slice, *from_direct) << "seed " << seed << " m " << m;
      }
    }
  }
}

// ------------------------------------------------------------------------
// The distributed-soundness property (satellite of the sharded subsystem):
// evaluating A_i^j(m) LOCALLY against shipped activity slices equals the
// single-process bound on the same history — the whole basis of the
// zero-registration cross-node Protocol A read.
// ------------------------------------------------------------------------

struct RandomHierarchy {
  PartitionSpec spec;
  std::vector<std::vector<SegmentId>> ancestors;  // per class, bottom-up
};

// Random tree with FULL ancestor closure as declared reads, so a critical
// path exists from every class to each of its ancestors.
RandomHierarchy MakeRandomHierarchy(Rng& rng) {
  RandomHierarchy h;
  const int n = static_cast<int>(rng.NextInRange(2, 7));
  std::vector<int> parent(n, -1);
  h.ancestors.resize(n);
  for (int v = 1; v < n; ++v) {
    parent[v] = static_cast<int>(rng.NextBounded(v));
    for (int a = parent[v]; a != -1; a = parent[a]) {
      h.ancestors[v].push_back(a);
    }
  }
  for (int v = 0; v < n; ++v) {
    h.spec.segment_names.push_back("S" + std::to_string(v));
    TransactionTypeSpec type;
    type.name = "class" + std::to_string(v);
    type.root_segment = v;
    type.read_segments = h.ancestors[v];
    h.spec.transaction_types.push_back(type);
  }
  return h;
}

TEST(DistBoundTest, SliceEvaluatedBoundEqualsSingleProcessBound) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    RandomHierarchy h = MakeRandomHierarchy(rng);
    auto schema = HierarchySchema::Create(h.spec);
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    const int n = schema->num_segments();

    Database db(n, 2);
    LogicalClock clock;
    HddController cc(&db, &clock, &*schema,
                     HddControllerOptions{.auto_trim_history = false});

    // Random activity: begins and commits of update transactions across
    // all classes, leaving some still active.
    std::vector<TxnDescriptor> open;
    for (int event = 0; event < 80; ++event) {
      if (!open.empty() && rng.NextBool(0.4)) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.NextBounded(open.size()));
        ASSERT_TRUE(cc.Commit(open[pick]).ok());
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        TxnOptions options;
        options.txn_class = static_cast<ClassId>(rng.NextBounded(n));
        auto txn = cc.Begin(options);
        ASSERT_TRUE(txn.ok()) << txn.status().ToString();
        open.push_back(*txn);
      }
    }

    // Ship every class's slice through the wire codec — exactly what a
    // remote requester receives — and evaluate against the copies.
    const Timestamp frontier = clock.Now() + 1;
    std::vector<ActivitySlice> slices;
    for (ClassId c = 0; c < n; ++c) {
      auto slice = cc.ExportActivitySlice(c, frontier);
      ASSERT_TRUE(slice.ok()) << slice.status().ToString();
      EXPECT_EQ(slice->class_id, c);
      EXPECT_EQ(slice->frontier, frontier);
      slices.push_back(*slice);
    }
    auto shipped = DecodeSlices(EncodeSlices(slices));
    ASSERT_TRUE(shipped.ok());
    SliceSource source;
    for (const ActivitySlice& s : *shipped) source.Install(s);

    ActivityLinkEvaluator remote_eval(&cc.class_tst(), &source);
    const ActivityLinkEvaluator& local_eval = cc.evaluator();
    for (ClassId i = 0; i < n; ++i) {
      std::vector<ClassId> targets = h.ancestors[static_cast<std::size_t>(i)];
      targets.push_back(i);  // A_i^i(m) = m on both sides
      for (ClassId j : targets) {
        for (Timestamp m = 1; m <= frontier; m += 1 + m / 7) {
          auto remote = remote_eval.A(i, j, m);
          auto local = local_eval.A(i, j, m);
          ASSERT_TRUE(remote.ok()) << remote.status().ToString();
          ASSERT_TRUE(local.ok()) << local.status().ToString();
          EXPECT_EQ(*remote, *local)
              << "seed " << seed << " A_" << i << "^" << j << "(" << m << ")";
          EXPECT_LE(*remote, m);  // A never exceeds its argument
        }
      }
    }
    for (auto& txn : open) ASSERT_TRUE(cc.Commit(txn).ok());
  }
}

}  // namespace
}  // namespace hdd
