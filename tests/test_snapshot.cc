#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

Version MakeVersion(std::uint64_t key, Timestamp wts, TxnId creator,
                    Value value, bool committed) {
  Version v;
  v.order_key = key;
  v.wts = wts;
  v.creator = creator;
  v.value = value;
  v.committed = committed;
  return v;
}

TEST(SnapshotTest, RoundTripEmptyishDatabase) {
  Database db({"events", "summary"}, 2, 7);
  std::stringstream buffer;
  ASSERT_TRUE(SaveDatabase(db, buffer).ok());
  auto loaded = LoadDatabase(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->num_segments(), 2);
  EXPECT_EQ((*loaded)->segment(0).name(), "events");
  EXPECT_EQ((*loaded)->segment(1).size(), 2u);
  EXPECT_EQ((*loaded)->granule({0, 1}).LatestCommitted()->value, 7);
}

TEST(SnapshotTest, RoundTripPreservesVersionChains) {
  Database db(1, 1, 0);
  Granule& g = db.granule({0, 0});
  ASSERT_TRUE(g.Insert(MakeVersion(10, 10, 1, 11, true)).ok());
  Version with_rts = MakeVersion(20, 20, 2, 22, true);
  with_rts.rts = 25;
  ASSERT_TRUE(g.Insert(with_rts).ok());
  ASSERT_TRUE(g.Insert(MakeVersion(30, 30, 3, 33, false)).ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveDatabase(db, buffer).ok());
  auto loaded = LoadDatabase(buffer);
  ASSERT_TRUE(loaded.ok());
  const Granule& lg = (*loaded)->granule({0, 0});
  ASSERT_EQ(lg.num_versions(), 4u);
  EXPECT_EQ(lg.Find(20)->rts, 25u);
  EXPECT_EQ(lg.Find(20)->value, 22);
  EXPECT_EQ(lg.Find(30)->committed, false);
  EXPECT_EQ(lg.LatestCommitted()->value, 22);
}

TEST(SnapshotTest, RejectsGarbage) {
  std::stringstream buffer("this is not a snapshot at all");
  auto loaded = LoadDatabase(buffer);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, RejectsTruncation) {
  Database db(2, 3, 1);
  std::stringstream buffer;
  ASSERT_TRUE(SaveDatabase(db, buffer).ok());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  auto loaded = LoadDatabase(truncated);
  EXPECT_FALSE(loaded.ok());
}

TEST(SnapshotTest, WorkloadStateSurvivesRoundTrip) {
  // Run the inventory app, snapshot, reload, and keep running against the
  // restored state under a fresh controller.
  InventoryWorkloadParams params;
  params.items = 4;
  InventoryWorkload workload(params);
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  auto db = workload.MakeDatabase();
  {
    LogicalClock clock;
    auto cc =
        CreateController(ControllerKind::kHdd, db.get(), &clock, &*schema);
    ExecutorOptions options;
    options.num_threads = 2;
    ASSERT_EQ(RunWorkload(*cc, workload, 200, options).failed, 0u);
  }

  std::stringstream buffer;
  ASSERT_TRUE(SaveDatabase(*db, buffer).ok());
  auto restored = LoadDatabase(buffer);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->TotalVersions(), db->TotalVersions());

  // The restored database serves a fresh controller. Its clock must be
  // advanced past every stored timestamp; reuse the version high-water
  // mark.
  Timestamp high = 0;
  for (SegmentId s = 0; s < (*restored)->num_segments(); ++s) {
    Segment& seg = (*restored)->segment(s);
    const std::uint32_t count = seg.size();
    std::lock_guard<std::mutex> guard(seg.latch());
    for (std::uint32_t g = 0; g < count; ++g) {
      for (const Version& v : seg.granule(g).versions()) {
        high = std::max(high, v.wts);
      }
    }
  }
  LogicalClock clock;
  while (clock.Now() < high) clock.Tick();
  auto cc = CreateController(ControllerKind::kHdd, restored->get(), &clock,
                             &*schema);
  ExecutorOptions options;
  options.num_threads = 2;
  ExecutorStats stats = RunWorkload(*cc, workload, 200, options);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_TRUE(CheckSerializability(cc->recorder()).serializable);
}

}  // namespace
}  // namespace hdd
