// Randomized stress tests of the low-level substrates: lock-manager
// invariants under concurrent acquire/release storms, version-chain
// integrity under random insert/remove/prune, and concurrent segment
// allocation.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "cc/lock_manager.h"
#include "common/rng.h"
#include "storage/database.h"

namespace hdd {
namespace {

TEST(LockManagerStressTest, RandomStormKeepsMutualExclusion) {
  LockManager lm(DeadlockPolicy::kDetect);
  constexpr int kGranules = 4;
  constexpr int kThreads = 4;
  constexpr int kRounds = 300;

  // One owner slot per granule; X holders assert sole ownership.
  std::vector<std::atomic<int>> owner(kGranules);
  for (auto& o : owner) o = -1;
  std::atomic<int> violations{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(900 + static_cast<std::uint64_t>(t));
      const TxnId me = static_cast<TxnId>(t) + 1;
      for (int round = 0; round < kRounds; ++round) {
        const GranuleRef g{0, static_cast<std::uint32_t>(
                                  rng.NextBounded(kGranules))};
        const bool exclusive = rng.NextBool(0.4);
        Status status =
            lm.Acquire(me, me, g, exclusive ? LockMode::kExclusive
                                            : LockMode::kShared,
                       nullptr);
        if (!status.ok()) {
          lm.ReleaseAll(me);
          continue;
        }
        if (exclusive) {
          int expected = -1;
          if (!owner[g.index].compare_exchange_strong(expected, t)) {
            violations.fetch_add(1);
          }
          std::this_thread::yield();
          owner[g.index] = -1;
        } else {
          if (owner[g.index].load() != -1) violations.fetch_add(1);
          std::this_thread::yield();
        }
        if (rng.NextBool(0.5)) lm.ReleaseAll(me);
      }
      lm.ReleaseAll(me);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
  for (TxnId t = 1; t <= kThreads; ++t) EXPECT_EQ(lm.NumHeld(t), 0u);
}

TEST(GranuleStressTest, RandomChainOperationsKeepInvariants) {
  Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    Granule g(0);
    std::set<std::uint64_t> live_keys = {0};
    Timestamp now = 1;
    for (int op = 0; op < 200; ++op) {
      const double roll = rng.NextDouble();
      if (roll < 0.5) {
        Version v;
        v.order_key = ++now;
        v.wts = now;
        v.creator = now;
        v.value = static_cast<Value>(now);
        v.committed = rng.NextBool(0.8);
        ASSERT_TRUE(g.Insert(v).ok());
        live_keys.insert(v.order_key);
      } else if (roll < 0.65 && live_keys.size() > 1) {
        auto it = live_keys.begin();
        std::advance(it, static_cast<long>(
                             rng.NextBounded(live_keys.size())));
        if (g.Remove(*it).ok()) live_keys.erase(it);
      } else if (roll < 0.8) {
        const Timestamp horizon = rng.NextBounded(now + 2);
        g.Prune(horizon);
        live_keys.clear();
        for (const Version& v : g.versions()) {
          live_keys.insert(v.order_key);
        }
      } else {
        // Queries never crash and respect ordering invariants.
        const Timestamp probe = rng.NextBounded(now + 2);
        const Version* latest = g.LatestCommittedBefore(probe);
        if (latest != nullptr) {
          EXPECT_LT(latest->wts, probe);
          EXPECT_TRUE(latest->committed);
        }
      }
      // Chain stays sorted by order_key.
      for (std::size_t i = 0; i + 1 < g.versions().size(); ++i) {
        ASSERT_LT(g.versions()[i].order_key,
                  g.versions()[i + 1].order_key);
      }
    }
  }
}

TEST(SegmentStressTest, ConcurrentAllocationIsConsistent) {
  Database db(1, 0, 0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<std::uint32_t>> indexes(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        indexes[t].push_back(db.segment(0).Allocate(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  // All indexes distinct and dense.
  std::set<std::uint32_t> all;
  for (const auto& v : indexes) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(*all.rbegin(),
            static_cast<std::uint32_t>(kThreads * kPerThread - 1));
  EXPECT_EQ(db.segment(0).size(),
            static_cast<std::uint32_t>(kThreads * kPerThread));
}

TEST(ClockStressTest, HighContentionUniqueness) {
  LogicalClock clock;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<Timestamp>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) seen[t].push_back(clock.Tick());
    });
  }
  for (auto& t : threads) t.join();
  std::set<Timestamp> all;
  for (const auto& v : seen) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace hdd
