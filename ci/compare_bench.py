#!/usr/bin/env python3
"""Bench-report regression gate.

Consumes the run reports emitted by the ``--report=`` flag of
bench_scaling / bench_wal / bench_obs_overhead (schema_version 1, see
src/obs/report.h) and diffs them against the committed baseline
(BENCH_6.json at the repo root).

Commands:
  merge OUT IN [IN...]          combine per-bench reports into one file
  compare --baseline B --current C [--threshold 0.15]
                                exit 1 if any throughput-like metric
                                (key ending in "_per_sec") regressed by
                                more than the threshold; if B does not
                                exist, copy C there and exit 0 (the
                                first run commits the baseline)
  self-test                     verify the comparator actually fails on
                                an injected 20% regression and passes an
                                unchanged report

Rows are identified by (bench, row name). Rows or metrics present only
on one side are reported but do not fail the gate (adding benches is
backward compatible; renames silently drop their comparison — so don't
rename). Only "_per_sec" metrics gate: counters like fsyncs vary freely
with iteration counts and histogram tails are too noisy to gate on.
"spins_per_sec" is the exception — it is the host-speed reference
itself (bench-level in the "calibration" row, row-level when a row
carries its own; see src/obs/report.h), used to divide host drift out
of the current run's throughputs, never gated.
"""

import argparse
import copy
import json
import os
import shutil
import sys
import tempfile


def load_reports(path):
    """Returns {(bench, row_name): {metric: value}} from a report or
    merged-report file."""
    with open(path) as f:
        data = json.load(f)
    reports = data["reports"] if "reports" in data else [data]
    rows = {}
    for report in reports:
        if report.get("schema_version") != 1:
            raise SystemExit(
                f"{path}: unsupported schema_version "
                f"{report.get('schema_version')!r}"
            )
        for row in report["rows"]:
            rows[(report["bench"], row["name"])] = row["metrics"]
    return rows


def cmd_merge(args):
    merged = {"schema_version": 1, "reports": []}
    for path in args.inputs:
        with open(path) as f:
            data = json.load(f)
        merged["reports"].extend(data.get("reports", [data]))
    with open(args.output, "w") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print(f"merged {len(args.inputs)} report(s) into {args.output}")
    return 0


def calibration_scales(baseline_rows, current_rows, notes):
    """Per-bench factor dividing host-speed drift out of the current run:
    scale = base_spins / current_spins, from each side's "calibration"
    row. 1.0 when either side lacks one."""
    scales = {}
    for (bench, name), base_metrics in baseline_rows.items():
        if name != "calibration":
            continue
        base_spins = base_metrics.get("spins_per_sec", 0)
        cur_spins = current_rows.get((bench, name), {}).get("spins_per_sec", 0)
        if base_spins > 0 and cur_spins > 0:
            scales[bench] = base_spins / cur_spins
            notes.append(
                f"{bench}: host speed x{cur_spins / base_spins:.2f} vs "
                f"baseline (throughputs rescaled accordingly)"
            )
    return scales


def compare(baseline_rows, current_rows, threshold):
    """Returns (regressions, notes): regressions fail the gate."""
    regressions = []
    notes = []
    scales = calibration_scales(baseline_rows, current_rows, notes)
    for key, base_metrics in sorted(baseline_rows.items()):
        bench, name = key
        if name == "calibration":
            continue  # the reference itself is never gated
        if key not in current_rows:
            notes.append(f"row {bench}/{name} missing from current run")
            continue
        cur_metrics = current_rows[key]
        # Rows may widen their own gate (fsync-bound modes; see report.h).
        row_threshold = max(threshold, base_metrics.get("gate_tolerance", 0))
        # A row measuring its own host-speed reference (adjacent to the
        # rep that produced the throughput) beats the bench-level one:
        # it also sees bursts too brief to span the whole bench run.
        scale = scales.get(bench, 1.0)
        base_spins = base_metrics.get("spins_per_sec", 0)
        cur_spins = cur_metrics.get("spins_per_sec", 0)
        if base_spins > 0 and cur_spins > 0:
            scale = base_spins / cur_spins
        for metric, base in sorted(base_metrics.items()):
            if not metric.endswith("_per_sec") or base <= 0:
                continue
            if metric == "spins_per_sec":
                continue  # the reference itself is never gated
            if metric not in cur_metrics:
                notes.append(f"{bench}/{name}: metric {metric} missing")
                continue
            cur = cur_metrics[metric] * scale
            delta = (cur - base) / base
            line = (
                f"{bench}/{name} {metric}: {base:.1f} -> {cur:.1f} "
                f"({delta:+.1%} host-adjusted, tol {row_threshold:.0%})"
            )
            if delta < -row_threshold:
                regressions.append(line)
            else:
                notes.append(line)
    for key in sorted(set(current_rows) - set(baseline_rows)):
        notes.append(f"row {key[0]}/{key[1]} new (not in baseline)")
    return regressions, notes


def cmd_compare(args):
    if not os.path.exists(args.baseline):
        shutil.copyfile(args.current, args.baseline)
        print(
            f"no baseline at {args.baseline}: committed current run as the "
            f"baseline (commit this file)"
        )
        return 0
    baseline_rows = load_reports(args.baseline)
    current_rows = load_reports(args.current)
    regressions, notes = compare(baseline_rows, current_rows, args.threshold)
    for line in notes:
        print(f"  ok: {line}")
    for line in regressions:
        print(f"  REGRESSION: {line}")
    if regressions:
        print(f"{len(regressions)} throughput regression(s) vs {args.baseline}")
        return 1
    print(f"no regression vs {args.baseline} (threshold {args.threshold:.0%})")
    return 0


def cmd_self_test(_args):
    """The gate guards the benches; this guards the gate: a synthetic 20%
    throughput drop must fail, an unchanged report must pass."""
    report = {
        "schema_version": 1,
        "bench": "selftest",
        "rows": [
            {
                "name": "cfg",
                "metrics": {"txn_per_sec": 1000.0, "fsyncs": 7.0},
            },
            {
                "name": "noisy-cfg",
                "metrics": {"txn_per_sec": 1000.0, "gate_tolerance": 0.5},
            },
            {
                "name": "self-calibrated-cfg",
                "metrics": {"txn_per_sec": 1000.0, "spins_per_sec": 500.0},
            },
            {
                "name": "calibration",
                "metrics": {"spins_per_sec": 500.0},
            },
        ],
    }
    regressed = copy.deepcopy(report)
    regressed["rows"][0]["metrics"]["txn_per_sec"] = 800.0  # -20%: gated
    regressed["rows"][0]["metrics"]["fsyncs"] = 1.0  # not gated
    regressed["rows"][1]["metrics"]["txn_per_sec"] = 800.0  # within tolerance

    with tempfile.TemporaryDirectory() as tmp:

        def write(name, data):
            path = os.path.join(tmp, name)
            with open(path, "w") as f:
                json.dump(data, f)
            return path

        base = write("base.json", report)
        ns = argparse.Namespace(baseline=base, threshold=0.15)

        ns.current = write("same.json", report)
        if cmd_compare(ns) != 0:
            print("self-test FAILED: unchanged report was flagged")
            return 1
        ns.current = write("regressed.json", regressed)
        if cmd_compare(ns) != 1:
            print("self-test FAILED: 20% regression was not flagged")
            return 1
        # The same current with the gated row restored must pass: the
        # noisy row's identical 20% drop sits inside its own tolerance.
        tolerated = copy.deepcopy(regressed)
        tolerated["rows"][0]["metrics"]["txn_per_sec"] = 1000.0
        ns.current = write("tolerated.json", tolerated)
        if cmd_compare(ns) != 0:
            print("self-test FAILED: gate_tolerance was not honored")
            return 1
        # A uniformly 2x-slower host (calibration halves with the
        # throughputs) is drift, not a regression.
        slow_host = copy.deepcopy(report)
        for row in slow_host["rows"]:
            for metric in row["metrics"]:
                if metric.endswith("_per_sec"):
                    row["metrics"][metric] /= 2.0
        ns.current = write("slow_host.json", slow_host)
        if cmd_compare(ns) != 0:
            print("self-test FAILED: host-speed drift read as a regression")
            return 1
        # A burst that hits only one row's reps: its own spins_per_sec
        # drops with its throughput (the bench-level calibration, run
        # seconds away, saw nothing) and the row-level ratio cancels.
        burst = copy.deepcopy(report)
        burst["rows"][2]["metrics"]["txn_per_sec"] = 600.0
        burst["rows"][2]["metrics"]["spins_per_sec"] = 300.0
        ns.current = write("burst.json", burst)
        if cmd_compare(ns) != 0:
            print("self-test FAILED: row-level calibration was not used")
            return 1
        # ...but a genuine 40% regression with a steady row-level
        # reference must still fail.
        real = copy.deepcopy(report)
        real["rows"][2]["metrics"]["txn_per_sec"] = 600.0
        ns.current = write("real.json", real)
        if cmd_compare(ns) != 1:
            print("self-test FAILED: regression hidden by row calibration")
            return 1
        # First-run behavior: a missing baseline is created, not an error.
        ns.baseline = os.path.join(tmp, "absent.json")
        if cmd_compare(ns) != 0 or not os.path.exists(ns.baseline):
            print("self-test FAILED: missing baseline was not committed")
            return 1
    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_merge = sub.add_parser("merge", help="combine reports into one file")
    p_merge.add_argument("output")
    p_merge.add_argument("inputs", nargs="+")
    p_merge.set_defaults(func=cmd_merge)

    p_cmp = sub.add_parser("compare", help="diff a run against the baseline")
    p_cmp.add_argument("--baseline", required=True)
    p_cmp.add_argument("--current", required=True)
    p_cmp.add_argument("--threshold", type=float, default=0.15)
    p_cmp.set_defaults(func=cmd_compare)

    p_self = sub.add_parser("self-test", help="verify the gate itself")
    p_self.set_defaults(func=cmd_self_test)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
