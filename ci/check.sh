#!/usr/bin/env bash
# Full verification, in escalating tiers:
#   1. Release build + tier-1 tests (the fast gate), then the full suite.
#   2. Bench smoke + regression gate: the report-emitting benches run
#      with small iteration counts, their reports merge into BENCH_7.json
#      at the repo root, and ci/compare_bench.py fails the stage if any
#      throughput metric regressed >15% vs the committed baseline (the
#      first run commits the baseline; the comparator self-tests first).
#      bench_server rides along at a CI-sized connection count.
#   2b. Server stage: the loopback smoke test (1k connections, pipelined
#      requests, clean shutdown, zero leaked fds; ctest label `server`)
#      in the Release build and again under ThreadSanitizer.
#   3. Deterministic-simulation stage: the model checker sweeps seeded
#      schedules of the HDD workload under fault injection (seed count
#      overridable via HDD_SIM_SEEDS; failing seeds print a replay
#      command of the form HDD_SIM_FIRST_SEED=<seed> HDD_SIM_SEEDS=1 ...).
#   3b. Dist stage: the sharded deployment (src/dist). Seeded sweeps of
#      the N-node cluster under message faults, cluster crashes, and the
#      stale-bound canary (HDD_SIM_DIST_* knobs), plus the socket smoke
#      test that execs two real `hdd_server --shard` processes over TCP.
#      bench_dist rides in the bench stage, gated against BENCH_8.json.
#   4. AddressSanitizer+UBSan build + tests, with a reduced sim corpus.
#   5. ThreadSanitizer build + tests. The concurrency suite (stress, fuzz,
#      concurrent oracle, sim) must be race-free; the sim sweep runs with
#      a reduced seed corpus since TSan is ~10x slower.
#
# Usage: ci/check.sh [jobs]
# Knobs: HDD_CHECK_STAGES=release,bench,sim,crash,dist,asan,tsan  subset
#        HDD_SKIP_TSAN=1   skip the TSan stage (slow / unsupported hosts)
#        HDD_SKIP_ASAN=1   skip the ASan+UBSan stage
set -euo pipefail

cd "$(dirname "$0")/.."
# nproc is Linux coreutils; fall back for macOS/BSD hosts.
JOBS="${1:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 2)}"
SIM_SEEDS="${HDD_SIM_SEEDS:-2000}"
SIM_SEEDS_TSAN="${HDD_SIM_SEEDS_TSAN:-100}"
SIM_SEEDS_ASAN="${HDD_SIM_SEEDS_ASAN:-200}"
CRASH_SEEDS="${HDD_SIM_CRASH_SEEDS:-2000}"
# Online re-decomposition sweeps (drift-driven Restructure under load,
# tests/test_sim_explore.cc SimExplore.Redecomp*). One knob scales the
# main drift sweep; the epoch/canary/crash variants keep their in-test
# defaults in the sim stage and shrink under the sanitizers.
REDECOMP_SEEDS="${HDD_SIM_REDECOMP_SEEDS:-500}"
# Distributed sweeps (tests/test_dist_sim.cc): message-fault, cluster
# crash, stale-bound canary. Shrunk under the sanitizers below.
DIST_SEEDS="${HDD_SIM_DIST_SEEDS:-500}"
DIST_CRASH_SEEDS="${HDD_SIM_DIST_CRASH_SEEDS:-200}"
DIST_CANARY_SEEDS="${HDD_SIM_DIST_CANARY_SEEDS:-150}"
STAGES="${HDD_CHECK_STAGES:-release,bench,server,sim,crash,dist,asan,tsan}"

want() { [[ ",$STAGES," == *",$1,"* ]]; }

if want release; then
  echo "=== Release build ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build -j "$JOBS"
  echo "=== Tier-1 tests (fast gate) ==="
  (cd build && ctest --output-on-failure -j "$JOBS" -L tier1)
  echo "=== Full Release suite ==="
  (cd build && ctest --output-on-failure -j "$JOBS" -LE sim)
fi

if want bench; then
  echo "=== Bench smoke + regression gate ==="
  python3 ci/compare_bench.py self-test
  REPORTS=build/bench-reports
  mkdir -p "$REPORTS"
  # Iteration counts sized for smoke, not precision; best-of repetition
  # plus the reports' calibration rows absorb host noise. Single-threaded
  # rows only: with more workers than cores the numbers are scheduler
  # luck (the full thread sweep belongs on a multi-core host).
  HDD_BENCH_TXNS="${HDD_BENCH_TXNS_SCALING:-4000}" \
    HDD_BENCH_THREADS="${HDD_BENCH_THREADS:-1}" \
    HDD_BENCH_REPS="${HDD_BENCH_REPS:-7}" \
    ./build/bench/bench_scaling --report="$REPORTS/scaling.json"
  # bench_wal keeps its own thread list: group commit only batches with
  # overlapping committers, so a t1-only run would pin mean_batch at 1
  # and measure nothing (see EXPERIMENTS.md).
  HDD_BENCH_TXNS="${HDD_BENCH_TXNS_WAL:-2000}" \
    HDD_BENCH_WAL_THREADS="${HDD_BENCH_WAL_THREADS:-1,4}" \
    HDD_BENCH_REPS="${HDD_BENCH_REPS:-3}" \
    ./build/bench/bench_wal --report="$REPORTS/wal.json"
  HDD_BENCH_TXNS="${HDD_BENCH_TXNS_OBS:-10000}" \
    HDD_BENCH_REPS="${HDD_BENCH_REPS:-9}" \
    ./build/bench/bench_obs_overhead --report="$REPORTS/obs_overhead.json"
  # Network front end, CI-sized: 1k loopback connections through the
  # forked driver (the standalone default is 10k; see bench_server.cc).
  HDD_BENCH_SERVER_CONNS="${HDD_BENCH_SERVER_CONNS:-1000}" \
    HDD_BENCH_SERVER_REQS="${HDD_BENCH_SERVER_REQS:-10}" \
    ./build/bench/bench_server --report="$REPORTS/server.json"
  python3 ci/compare_bench.py merge "$REPORTS/current.json" \
    "$REPORTS"/scaling.json "$REPORTS"/wal.json \
    "$REPORTS"/obs_overhead.json "$REPORTS"/server.json
  python3 ci/compare_bench.py compare \
    --baseline BENCH_7.json --current "$REPORTS/current.json" \
    --threshold "${HDD_BENCH_THRESHOLD:-0.15}"
  # Sharded deployment, CI-sized; the binary itself exits non-zero unless
  # HDD registration messages are 0 while SDD-1-lite's are > 0, so the
  # paper's zero-registration claim is re-asserted on every run. The
  # socket row runs real loopback TCP; its own gate_tolerance widens the
  # throughput gate accordingly. Gated against its own baseline.
  HDD_BENCH_DIST_TXNS="${HDD_BENCH_DIST_TXNS:-2000}" \
    HDD_BENCH_DIST_SOCKET_TXNS="${HDD_BENCH_DIST_SOCKET_TXNS:-300}" \
    HDD_BENCH_REPS="${HDD_BENCH_REPS:-3}" \
    ./build/bench/bench_dist --report="$REPORTS/dist.json"
  python3 ci/compare_bench.py compare \
    --baseline BENCH_8.json --current "$REPORTS/dist.json" \
    --threshold "${HDD_BENCH_THRESHOLD:-0.15}"
fi

if want server; then
  echo "=== Server stage: loopback smoke, Release ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build -j "$JOBS" --target test_net_smoke
  (cd build && ctest --output-on-failure -L server)
  if [[ "${HDD_SKIP_TSAN:-0}" != 1 ]]; then
    echo "=== Server stage: loopback smoke, TSan ==="
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DHDD_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$JOBS" --target test_net_smoke
    (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ctest --output-on-failure -L server)
  fi
fi

if want sim; then
  echo "=== Simulation sweep ($SIM_SEEDS seeds, $REDECOMP_SEEDS redecomp) ==="
  (cd build && HDD_SIM_SEEDS="$SIM_SEEDS" \
    HDD_SIM_REDECOMP_SEEDS="$REDECOMP_SEEDS" \
    ctest --output-on-failure -L sim)
fi

if want dist; then
  echo "=== Dist stage ($DIST_SEEDS fault / $DIST_CRASH_SEEDS crash / $DIST_CANARY_SEEDS canary seeds) ==="
  # Seeded distributed sweeps plus the socket deployment smoke (in-process
  # shard pair with the fd-leak assert, and two real `hdd_server --shard`
  # processes driven over TCP; ctest label `dist`).
  (cd build && HDD_SIM_DIST_SEEDS="$DIST_SEEDS" \
    HDD_SIM_DIST_CRASH_SEEDS="$DIST_CRASH_SEEDS" \
    HDD_SIM_DIST_CANARY_SEEDS="$DIST_CANARY_SEEDS" \
    ctest --output-on-failure -L dist)
fi

if want crash; then
  echo "=== Crash-recovery stage ($CRASH_SEEDS crash seeds) ==="
  # WAL unit tier plus the on-disk kill -9 smoke test
  # (tests/test_wal_crash_process.cc: forked child, SIGKILL, real files).
  (cd build && ctest --output-on-failure -j "$JOBS" \
    -R 'test_wal_(format|recovery|crash_process)')
  # Process-crash sweep: seeded schedules killed at arbitrary yield
  # points; every crash must recover exactly the committed prefix and the
  # combined pre/post-crash history must stay 1SR, and the lost-ack
  # canary (WalOptions::mutation_skip_commit_sync) must be caught with a
  # replayable seed. Knob: HDD_SIM_CRASH_SEEDS.
  (cd build && HDD_SIM_CRASH_SEEDS="$CRASH_SEEDS" \
    ./tests/test_sim_explore --gtest_filter='SimExplore.Wal*')
fi

if want asan && [[ "${HDD_SKIP_ASAN:-0}" != 1 ]]; then
  echo "=== AddressSanitizer+UBSan build ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DHDD_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS"
  echo "=== AddressSanitizer+UBSan tests ==="
  # UBSan findings abort loudly; the sim sweep shrinks because ASan is
  # ~2x slower and the corpus is about memory errors, not schedules.
  (cd build-asan && \
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=0" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    HDD_SIM_SEEDS="$SIM_SEEDS_ASAN" HDD_SIM_CANARY_SEEDS=50 \
    HDD_SIM_CRASH_SEEDS=200 HDD_SIM_CRASH_PERCOMMIT_SEEDS=50 \
    HDD_SIM_WAL_CANARY_SEEDS=50 HDD_SIM_EPOCH_SEEDS=200 \
    HDD_SIM_EPOCH_CANARY_SEEDS=50 HDD_SIM_EPOCH_CRASH_SEEDS=100 \
    HDD_SIM_REDECOMP_SEEDS=60 HDD_SIM_REDECOMP_EPOCH_SEEDS=40 \
    HDD_SIM_REDECOMP_CANARY_SEEDS=30 HDD_SIM_REDECOMP_CRASH_SEEDS=40 \
    HDD_SIM_DIST_SEEDS=100 HDD_SIM_DIST_CRASH_SEEDS=50 \
    HDD_SIM_DIST_CANARY_SEEDS=30 \
    ctest --output-on-failure -j "$JOBS")
fi

if want tsan && [[ "${HDD_SKIP_TSAN:-0}" != 1 ]]; then
  echo "=== ThreadSanitizer build ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DHDD_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  echo "=== ThreadSanitizer tests ==="
  # halt_on_error so any reported race fails the suite loudly; the sim
  # sweep shrinks to keep the TSan stage's runtime sane.
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
    HDD_SIM_SEEDS="$SIM_SEEDS_TSAN" HDD_SIM_CANARY_SEEDS=50 \
    HDD_SIM_CRASH_SEEDS=200 HDD_SIM_CRASH_PERCOMMIT_SEEDS=50 \
    HDD_SIM_WAL_CANARY_SEEDS=50 HDD_SIM_EPOCH_SEEDS=100 \
    HDD_SIM_EPOCH_CANARY_SEEDS=50 HDD_SIM_EPOCH_CRASH_SEEDS=100 \
    HDD_SIM_REDECOMP_SEEDS=40 HDD_SIM_REDECOMP_EPOCH_SEEDS=30 \
    HDD_SIM_REDECOMP_CANARY_SEEDS=20 HDD_SIM_REDECOMP_CRASH_SEEDS=30 \
    HDD_SIM_DIST_SEEDS=60 HDD_SIM_DIST_CRASH_SEEDS=40 \
    HDD_SIM_DIST_CANARY_SEEDS=20 \
    ctest --output-on-failure -j "$JOBS")
fi

echo "=== All checks passed ==="
