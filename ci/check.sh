#!/usr/bin/env bash
# Full verification, in escalating tiers:
#   1. Release build + tier-1 tests (the fast gate), then the full suite.
#   2. Deterministic-simulation stage: the model checker sweeps seeded
#      schedules of the HDD workload under fault injection (seed count
#      overridable via HDD_SIM_SEEDS; failing seeds print a replay
#      command of the form HDD_SIM_FIRST_SEED=<seed> HDD_SIM_SEEDS=1 ...).
#   3. ThreadSanitizer build + tests. The concurrency suite (stress, fuzz,
#      concurrent oracle, sim) must be race-free; the sim sweep runs with
#      a reduced seed corpus since TSan is ~10x slower.
#
# Usage: ci/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
SIM_SEEDS="${HDD_SIM_SEEDS:-2000}"
SIM_SEEDS_TSAN="${HDD_SIM_SEEDS_TSAN:-100}"
CRASH_SEEDS="${HDD_SIM_CRASH_SEEDS:-2000}"

echo "=== Release build ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$JOBS"
echo "=== Tier-1 tests (fast gate) ==="
(cd build && ctest --output-on-failure -j "$JOBS" -L tier1)
echo "=== Full Release suite ==="
(cd build && ctest --output-on-failure -j "$JOBS" -LE sim)

echo "=== Simulation sweep ($SIM_SEEDS seeds) ==="
(cd build && HDD_SIM_SEEDS="$SIM_SEEDS" \
  ctest --output-on-failure -L sim)

echo "=== Crash-recovery stage ($CRASH_SEEDS crash seeds) ==="
# WAL unit tier plus the on-disk kill -9 smoke test
# (tests/test_wal_crash_process.cc: forked child, SIGKILL, real files).
(cd build && ctest --output-on-failure -j "$JOBS" \
  -R 'test_wal_(format|recovery|crash_process)')
# Process-crash sweep: seeded schedules killed at arbitrary yield
# points; every crash must recover exactly the committed prefix and the
# combined pre/post-crash history must stay 1SR, and the lost-ack
# canary (WalOptions::mutation_skip_commit_sync) must be caught with a
# replayable seed. Knob: HDD_SIM_CRASH_SEEDS.
(cd build && HDD_SIM_CRASH_SEEDS="$CRASH_SEEDS" \
  ./tests/test_sim_explore --gtest_filter='SimExplore.Wal*')

echo "=== ThreadSanitizer build ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHDD_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
echo "=== ThreadSanitizer tests ==="
# halt_on_error so any reported race fails the suite loudly; the sim
# sweep shrinks to keep the TSan stage's runtime sane.
(cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
  HDD_SIM_SEEDS="$SIM_SEEDS_TSAN" HDD_SIM_CANARY_SEEDS=50 \
  HDD_SIM_CRASH_SEEDS=200 HDD_SIM_CRASH_PERCOMMIT_SEEDS=50 \
  HDD_SIM_WAL_CANARY_SEEDS=50 \
  ctest --output-on-failure -j "$JOBS")

echo "=== All checks passed ==="
