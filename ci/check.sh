#!/usr/bin/env bash
# Full verification: Release build + tests, then ThreadSanitizer build +
# tests. The concurrency suite (stress, fuzz, concurrent oracle) must be
# race-free under TSan.
#
# Usage: ci/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== Release build ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$JOBS"
echo "=== Release tests ==="
(cd build && ctest --output-on-failure -j "$JOBS")

echo "=== ThreadSanitizer build ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHDD_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
echo "=== ThreadSanitizer tests ==="
# halt_on_error so any reported race fails the suite loudly.
(cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
  ctest --output-on-failure -j "$JOBS")

echo "=== All checks passed ==="
