// Figure 1: the lost-update anomaly. An uncontrolled executor loses
// updates under concurrency; every controller in the library applies all
// of them. Reproduces the paper's Figure 1 as a measured table.

#include <atomic>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "engine/harness.h"
#include "storage/database.h"

namespace hdd {
namespace {

constexpr std::uint64_t kIncrements = 2000;
constexpr int kThreads = 4;

// Deposits $1 into one shared account, with NO concurrency control: the
// literal Figure 1 failure mode (read, compute, write, racing).
std::uint64_t RunUncontrolled() {
  Database db(1, 1, 0);
  std::atomic<std::uint64_t> next_key{1};
  std::atomic<std::uint64_t> started{0};
  auto worker = [&] {
    for (;;) {
      if (started.fetch_add(1) >= kIncrements) return;
      Segment& seg = db.segment(0);
      Value balance;
      {
        std::lock_guard<std::mutex> guard(seg.latch());
        balance = seg.granule(0).LatestCommitted()->value;
      }
      std::this_thread::yield();  // the fatal window of Figure 1
      Version v;
      v.order_key = next_key.fetch_add(1);
      v.wts = v.order_key;
      v.creator = v.order_key;
      v.value = balance + 1;
      v.committed = true;
      std::lock_guard<std::mutex> guard(seg.latch());
      (void)seg.granule(0).Insert(v);
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  std::lock_guard<std::mutex> guard(db.segment(0).latch());
  return static_cast<std::uint64_t>(
      db.segment(0).granule(0).LatestCommitted()->value);
}

// One hot account, read-increment-write programs.
class IncrementWorkload : public Workload {
 public:
  TxnProgram Make(std::uint64_t, Rng&) const override {
    TxnProgram program;
    program.options.txn_class = 0;
    program.body = [](ConcurrencyController& cc,
                      const TxnDescriptor& txn) -> Status {
      HDD_ASSIGN_OR_RETURN(Value v, cc.Read(txn, {0, 0}));
      std::this_thread::yield();
      return cc.Write(txn, {0, 0}, v + 1);
    };
    return program;
  }
};

void Run() {
  std::cout << "=== Figure 1: lost updates on one account, " << kIncrements
            << " deposits of $1, " << kThreads << " threads ===\n\n";
  std::cout << std::left << std::setw(16) << "scheme" << std::right
            << std::setw(12) << "final value" << std::setw(12) << "lost"
            << std::setw(12) << "restarts" << "\n";

  const std::uint64_t uncontrolled = RunUncontrolled();
  std::cout << std::left << std::setw(16) << "none" << std::right
            << std::setw(12) << uncontrolled << std::setw(12)
            << kIncrements - uncontrolled << std::setw(12) << "-" << "\n";

  PartitionSpec spec;
  spec.segment_names = {"accounts"};
  spec.transaction_types = {{"inc", 0, {}}};
  auto schema = HierarchySchema::Create(spec);
  IncrementWorkload workload;
  for (ControllerKind kind : AllControllerKinds()) {
    Database db(1, 1, 0);
    LogicalClock clock;
    auto cc = CreateController(kind, &db, &clock, &*schema);
    ExecutorOptions options;
    options.num_threads = kThreads;
    ExecutorStats stats = RunWorkload(*cc, workload, kIncrements, options);
    std::lock_guard<std::mutex> guard(db.segment(0).latch());
    const Value final_value = db.segment(0).granule(0).LatestCommitted()->value;
    std::cout << std::left << std::setw(16) << ControllerKindName(kind)
              << std::right << std::setw(12) << final_value << std::setw(12)
              << static_cast<Value>(stats.committed) - final_value
              << std::setw(12) << stats.aborted_attempts << "\n";
  }
  std::cout << "\nExpected shape: 'none' loses updates; every controller "
               "applies exactly its committed count.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
