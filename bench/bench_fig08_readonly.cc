// Figure 8 / §5: ad-hoc read-only transactions against a live update
// stream. Measures, per controller: audit completion, restarts forced on
// the audit, and the concurrency-control work performed. Under HDD the
// audits ride Protocol C time walls: no locks, no read timestamps, no
// aborts; 2PL audits lock every record; TO/MVTO audits stamp every
// record; TO audits can be restarted by concurrent updates.

#include <atomic>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <thread>

#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

constexpr int kAudits = 30;
constexpr std::uint64_t kBackgroundTxns = 1500;

struct AuditResult {
  double avg_latency_us = 0;
  std::uint64_t retries = 0;
  std::uint64_t read_locks = 0;
  std::uint64_t read_stamps = 0;
  std::uint64_t blocked_reads = 0;
  bool serializable = false;
};

AuditResult RunOne(ControllerKind kind, bool hosted_audits = false) {
  InventoryWorkloadParams params;
  params.items = 16;
  params.read_only_weight = 0;  // audits run in the foreground instead
  params.yield_between_ops = true;
  InventoryWorkload updates(params);
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
  auto db = updates.MakeDatabase();
  LogicalClock clock;
  auto cc = CreateController(kind, db.get(), &clock, &*schema);

  std::thread background([&] {
    ExecutorOptions options;
    options.num_threads = 2;
    (void)RunWorkload(*cc, updates, kBackgroundTxns, options);
  });

  // Foreground audits: read every granule of every segment.
  AuditResult result;
  const auto t0 = std::chrono::steady_clock::now();
  TxnOptions audit_options;
  audit_options.read_only = true;
  if (hosted_audits) {
    // §5.0 hosting: the inventory chain 3 -> 2 -> 1 -> 0 is one critical
    // path, so the audit can ride Protocol A instead of a time wall.
    audit_options.read_scope = {0, 1, 2, 3};
  }
  for (int audit = 0; audit < kAudits; ++audit) {
    for (;;) {
      auto txn = cc->Begin(audit_options);
      Status status = Status::OK();
      Value checksum = 0;
      for (std::uint32_t item = 0; item < params.items && status.ok();
           ++item) {
        const std::uint32_t base = item * params.event_slots_per_item;
        for (std::uint32_t s = 0; s < params.event_slots_per_item; ++s) {
          auto v = cc->Read(*txn, {0, base + s});
          if (!v.ok()) {
            status = v.status();
            break;
          }
          checksum += *v;
        }
        for (SegmentId seg = 1; seg <= 3 && status.ok(); ++seg) {
          auto v = cc->Read(*txn, {seg, item});
          if (!v.ok()) {
            status = v.status();
            break;
          }
          checksum += *v;
        }
      }
      (void)checksum;
      if (status.ok()) {
        (void)cc->Commit(*txn);
        break;
      }
      (void)cc->Abort(*txn);
      ++result.retries;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  background.join();

  result.avg_latency_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kAudits;
  result.read_locks = cc->metrics().read_locks_acquired.load();
  result.read_stamps = cc->metrics().read_timestamps_written.load();
  result.blocked_reads = cc->metrics().blocked_reads.load();
  result.serializable = CheckSerializability(cc->recorder()).serializable;
  return result;
}

void Run() {
  std::cout << "=== Figure 8 / section 5: " << kAudits
            << " whole-database audits against a live update stream ===\n"
            << "(read_locks / read_stamps include the background "
               "updaters' own work; the per-controller DELTA between "
               "hdd and the baselines is the audit cost)\n\n";
  std::cout << std::left << std::setw(14) << "controller" << std::right
            << std::setw(14) << "audit us" << std::setw(12) << "restarts"
            << std::setw(12) << "rd-locks" << std::setw(12) << "rd-stamps"
            << std::setw(10) << "blk-rd" << std::setw(14) << "serializable"
            << "\n";
  auto print_row = [](const std::string& name, const AuditResult& r) {
    std::cout << std::left << std::setw(14) << name << std::right
              << std::setw(14) << std::fixed << std::setprecision(1)
              << r.avg_latency_us << std::setw(12) << r.retries
              << std::setw(12) << r.read_locks << std::setw(12)
              << r.read_stamps << std::setw(10) << r.blocked_reads
              << std::setw(14) << (r.serializable ? "yes" : "NO") << "\n";
  };
  print_row("hdd (wall)", RunOne(ControllerKind::kHdd));
  print_row("hdd (hosted)", RunOne(ControllerKind::kHdd, true));
  for (ControllerKind kind :
       {ControllerKind::kMv2pl, ControllerKind::kSdd1,
        ControllerKind::kTwoPhase, ControllerKind::kTimestampOrdering,
        ControllerKind::kMvto}) {
    print_row(std::string(ControllerKindName(kind)), RunOne(kind));
  }
  std::cout << "\nExpected shape: hdd and mv2pl audits never restart and "
               "add no registration; to/mvto stamp every audited record; "
               "to audits restart under update pressure; 2pl audits "
               "lock every record and block writers.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
