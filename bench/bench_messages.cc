// §7.5: inter-level synchronization messages in a hierarchical database
// computer. Each segment controller is a processor level; the model
// counts remote request/response pairs, remote read registrations (the
// messages HDD deletes) and blocking notifications.

#include <iomanip>
#include <iostream>

#include "engine/harness.h"
#include "engine/inventory_workload.h"
#include "engine/message_model.h"

namespace hdd {
namespace {

void Run() {
  InventoryWorkloadParams params;
  params.items = 16;
  params.read_only_weight = 0.10;
  params.yield_between_ops = true;
  InventoryWorkload workload(params);
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());

  std::cout << "=== section 7.5: inter-level synchronization messages "
               "(database-computer model, inventory app, 1500 txns) "
               "===\n\n";
  std::cout << std::left << std::setw(14) << "controller" << std::right
            << std::setw(12) << "remote" << std::setw(12) << "transfer"
            << std::setw(14) << "registration" << std::setw(12)
            << "blocking" << std::setw(12) << "total" << std::setw(12)
            << "msg/txn" << "\n";

  ExecutorOptions options;
  options.num_threads = 4;
  for (ControllerKind kind :
       {ControllerKind::kHdd, ControllerKind::kTwoPhase,
        ControllerKind::kTimestampOrdering, ControllerKind::kMvto,
        ControllerKind::kMv2pl, ControllerKind::kSdd1,
        ControllerKind::kOcc}) {
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    auto cc = CreateController(kind, db.get(), &clock, &*schema);
    (void)RunWorkload(*cc, workload, 1500, options);
    MessageStats stats =
        ComputeMessageStats(cc->recorder().steps(),
                            cc->recorder().identities(), cc->metrics());
    std::cout << std::left << std::setw(14) << ControllerKindName(kind)
              << std::right << std::setw(12) << stats.remote_accesses
              << std::setw(12) << stats.transfer_messages << std::setw(14)
              << stats.registration_messages << std::setw(12)
              << stats.blocking_messages << std::setw(12)
              << stats.total_messages << std::setw(12) << std::fixed
              << std::setprecision(2) << stats.per_commit << "\n";
  }
  std::cout << "\nExpected shape: every technique pays the same transfer "
               "messages (the data must move), but hdd's registration "
               "column is ZERO — the §7.5 claim that HDD reduces "
               "inter-level synchronization communication. sdd1 also "
               "registers nothing but pays blocking notifications.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
