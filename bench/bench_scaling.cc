// Multi-core scaling of the per-class sharded HddController against the
// single-mutex baselines (MVTO, strict 2PL), on a cross-segment-read-heavy
// synthetic workload: exactly the traffic Protocol A serves with no global
// latch, so HDD's committed-txn throughput should climb with the worker
// count while the big-lock controllers flatline. The schedule recorder is
// disabled so the measurement excludes audit bookkeeping.
//
// Note: on a single-core host every configuration time-slices one CPU, so
// the sweep only shows that added workers do not collapse throughput; the
// parallel speedup itself needs a multi-core machine.

#include <iomanip>
#include <iostream>
#include <thread>

#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/synthetic_workload.h"

namespace hdd {
namespace {

constexpr std::uint64_t kTxnsPerRun = 4000;

SyntheticWorkload MakeWorkload() {
  SyntheticWorkloadParams params;
  params.depth = 8;  // one class per (potential) core
  params.granules_per_segment = 64;
  params.own_reads = 1;
  params.own_writes = 1;
  params.upper_reads = 4;  // the cross-segment-read-heavy part
  params.read_only_fraction = 0.0;
  return SyntheticWorkload(params);
}

double MeasureThroughput(ControllerKind kind, const SyntheticWorkload& workload,
                         const HierarchySchema* schema, int threads) {
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  auto cc = CreateController(kind, db.get(), &clock, schema);
  cc->recorder().set_enabled(false);
  ExecutorOptions options;
  options.num_threads = threads;
  ExecutorStats stats = RunWorkload(*cc, workload, kTxnsPerRun, options);
  return stats.Throughput();
}

void Run() {
  const SyntheticWorkload workload = MakeWorkload();
  auto schema = HierarchySchema::Create(workload.Spec());

  std::cout << "=== committed-txn throughput vs worker threads "
               "(synthetic chain depth 8, upper_reads=4, " << kTxnsPerRun
            << " txns/run) ===\n"
            << "host has " << std::thread::hardware_concurrency()
            << " hardware threads\n\n";
  std::cout << std::left << std::setw(10) << "threads" << std::right;
  for (const char* name : {"hdd", "mvto", "2pl"}) {
    std::cout << std::setw(14) << name << std::setw(10) << "x1";
  }
  std::cout << "   (txn/s, speedup vs 1 thread)\n";

  constexpr ControllerKind kKinds[] = {
      ControllerKind::kHdd, ControllerKind::kMvto, ControllerKind::kTwoPhase};
  double base[3] = {0, 0, 0};
  for (int threads : {1, 2, 4, 8, 16}) {
    std::cout << std::left << std::setw(10) << threads << std::right;
    for (int k = 0; k < 3; ++k) {
      const double tput =
          MeasureThroughput(kKinds[k], workload, &*schema, threads);
      if (threads == 1) base[k] = tput;
      std::cout << std::setw(14) << std::fixed << std::setprecision(0)
                << tput << std::setw(9) << std::setprecision(2)
                << (base[k] > 0 ? tput / base[k] : 0.0) << "x";
    }
    std::cout << "\n";
  }
  std::cout << "\nExpected shape (multi-core host): hdd scales with "
               "threads — Protocol A reads cross segments without any "
               "shared latch and Protocol B traffic splits across "
               "per-class shards — while mvto and 2pl serialize every "
               "operation on one controller mutex.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
