// Multi-core scaling of the per-class sharded HddController against the
// single-mutex baselines (MVTO, strict 2PL), on a cross-segment-read-heavy
// synthetic workload: exactly the traffic Protocol A serves with no global
// latch, so HDD's committed-txn throughput should climb with the worker
// count while the big-lock controllers flatline. The schedule recorder is
// disabled so the measurement excludes audit bookkeeping.
//
// Note: on a single-core host every configuration time-slices one CPU, so
// the sweep only shows that added workers do not collapse throughput; the
// parallel speedup itself needs a multi-core machine.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <thread>

#include "engine/epoch_executor.h"
#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/synthetic_workload.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace hdd {
namespace {

// CI smoke runs shrink the sweep via HDD_BENCH_TXNS / HDD_BENCH_THREADS
// and stabilize it via HDD_BENCH_REPS (best-of repetitions per config).
const std::uint64_t kTxnsPerRun = EnvOr("HDD_BENCH_TXNS", 4000);
const int kReps = static_cast<int>(EnvOr("HDD_BENCH_REPS", 1));
// Batch size of the hdd_epoch configuration (BeginEpoch/BeginBatch path:
// one Protocol A bound evaluation and one shard admission per class per
// epoch, conflicts pre-ordered by the dependency graph).
const std::uint64_t kEpochSize = EnvOr("HDD_BENCH_EPOCH_SIZE", 64);

SyntheticWorkload MakeWorkload() {
  SyntheticWorkloadParams params;
  params.depth = 8;  // one class per (potential) core
  params.granules_per_segment = 64;
  params.own_reads = 1;
  params.own_writes = 1;
  params.upper_reads = 4;  // the cross-segment-read-heavy part
  params.read_only_fraction = 0.0;
  return SyntheticWorkload(params);
}

struct Measurement {
  ExecutorStats stats;
  double spins_per_sec = 0.0;  // host speed adjacent to the winning rep
};

Measurement MeasureThroughput(ControllerKind kind,
                              const SyntheticWorkload& workload,
                              const HierarchySchema* schema, int threads,
                              bool epoch_mode = false) {
  Measurement best;
  NormalizedBest selector;
  for (int rep = 0; rep < kReps; ++rep) {
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    auto cc = CreateController(kind, db.get(), &clock, schema);
    cc->recorder().set_enabled(false);
    ExecutorStats stats;
    if (epoch_mode) {
      EpochExecutorOptions options;
      options.num_threads = threads;
      options.epoch_size = kEpochSize;
      stats = RunWorkloadEpochs(*cc, workload, kTxnsPerRun, options);
    } else {
      ExecutorOptions options;
      options.num_threads = threads;
      stats = RunWorkload(*cc, workload, kTxnsPerRun, options);
    }
    if (selector.Offer(stats.Throughput())) best.stats = stats;
  }
  best.spins_per_sec = selector.spins_per_sec();
  return best;
}

void Run(int argc, char** argv) {
  const SyntheticWorkload workload = MakeWorkload();
  auto schema = HierarchySchema::Create(workload.Spec());

  std::cout << "=== committed-txn throughput vs worker threads "
               "(synthetic chain depth 8, upper_reads=4, " << kTxnsPerRun
            << " txns/run) ===\n"
            << "host has " << std::thread::hardware_concurrency()
            << " hardware threads\n\n";
  std::cout << std::left << std::setw(10) << "threads" << std::right;
  for (const char* name : {"hdd", "hdd_epoch", "mvto", "2pl"}) {
    std::cout << std::setw(14) << name << std::setw(10) << "x1";
  }
  std::cout << "   (txn/s, speedup vs 1 thread)\n";

  const std::optional<std::string> trace_path = TracePathFromArgs(argc, argv);
  if (trace_path) TraceRecorder::Enable();

  RunReport report("scaling");
  // Bracketing the sweep and keeping the slower reading means a host
  // slowdown that begins mid-sweep still shows up in the reference.
  const double cal_before = CalibrationSpinsPerSec();
  // hdd appears twice: once per-txn, once under the epoch/batch executor
  // (same controller, BeginEpoch/BeginBatch admission, epoch size
  // HDD_BENCH_EPOCH_SIZE).
  constexpr ControllerKind kKinds[] = {
      ControllerKind::kHdd, ControllerKind::kHdd, ControllerKind::kMvto,
      ControllerKind::kTwoPhase};
  constexpr const char* kKindNames[] = {"hdd", "hdd_epoch", "mvto", "2pl"};
  constexpr bool kEpochMode[] = {false, true, false, false};
  double base[4] = {0, 0, 0, 0};
  for (int threads : EnvListOr("HDD_BENCH_THREADS", {1, 2, 4, 8, 16})) {
    std::cout << std::left << std::setw(10) << threads << std::right;
    for (int k = 0; k < 4; ++k) {
      const Measurement m = MeasureThroughput(kKinds[k], workload, &*schema,
                                              threads, kEpochMode[k]);
      const double tput = m.stats.Throughput();
      if (base[k] == 0) base[k] = tput;
      std::cout << std::setw(14) << std::fixed << std::setprecision(0)
                << tput << std::setw(9) << std::setprecision(2)
                << (base[k] > 0 ? tput / base[k] : 0.0) << "x";
      report
          .AddRow(std::string(kKindNames[k]) + "_t" + std::to_string(threads))
          .Metric("txn_per_sec", tput)
          .Metric("spins_per_sec", m.spins_per_sec)
          .Metric("committed", m.stats.committed)
          .Metric("aborted_attempts", m.stats.aborted_attempts)
          .Metric("latency_p95_us", m.stats.latency_p95_us);
    }
    std::cout << "\n";
  }
  report.AddRow("calibration")
      .Metric("spins_per_sec",
              std::min(cal_before, CalibrationSpinsPerSec()));
  std::cout << "\nExpected shape (multi-core host): hdd scales with "
               "threads — Protocol A reads cross segments without any "
               "shared latch and Protocol B traffic splits across "
               "per-class shards — while mvto and 2pl serialize every "
               "operation on one controller mutex. hdd_epoch amortizes "
               "the remaining per-txn costs (activity-link evaluation, "
               "admission latching, the younger-reader check) across "
               "each batch and should sit well above per-txn hdd.\n";

  if (const auto path = ReportPathFromArgs(argc, argv)) {
    std::string error;
    if (!report.WriteFile(*path, &error)) {
      std::cerr << "report write failed: " << error << "\n";
      std::exit(1);
    }
    std::cout << "report written to " << *path << "\n";
  }
  if (trace_path) {
    std::ofstream os(*trace_path);
    if (!os) {
      std::cerr << "trace write failed: cannot open " << *trace_path << "\n";
      std::exit(1);
    }
    TraceRecorder::WriteChromeTrace(os);
    std::cout << "trace written to " << *trace_path << "\n";
  }
}

}  // namespace
}  // namespace hdd

int main(int argc, char** argv) {
  hdd::Run(argc, argv);
  return 0;
}
