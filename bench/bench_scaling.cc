// Multi-core scaling of the per-class sharded HddController against the
// single-mutex baselines (MVTO, strict 2PL), on a cross-segment-read-heavy
// synthetic workload: exactly the traffic Protocol A serves with no global
// latch, so HDD's committed-txn throughput should climb with the worker
// count while the big-lock controllers flatline. The schedule recorder is
// disabled so the measurement excludes audit bookkeeping.
//
// Note: on a single-core host every configuration time-slices one CPU, so
// the sweep only shows that added workers do not collapse throughput; the
// parallel speedup itself needs a multi-core machine.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <thread>

#include "engine/banking_workload.h"
#include "engine/epoch_executor.h"
#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"
#include "engine/synthetic_workload.h"
#include "graph/auto_decompose.h"
#include "hdd/hdd_controller.h"
#include "obs/footprint.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace hdd {
namespace {

// CI smoke runs shrink the sweep via HDD_BENCH_TXNS / HDD_BENCH_THREADS
// and stabilize it via HDD_BENCH_REPS (best-of repetitions per config).
const std::uint64_t kTxnsPerRun = EnvOr("HDD_BENCH_TXNS", 4000);
const int kReps = static_cast<int>(EnvOr("HDD_BENCH_REPS", 1));
// Batch size of the hdd_epoch configuration (BeginEpoch/BeginBatch path:
// one Protocol A bound evaluation and one shard admission per class per
// epoch, conflicts pre-ordered by the dependency graph).
const std::uint64_t kEpochSize = EnvOr("HDD_BENCH_EPOCH_SIZE", 64);

SyntheticWorkload MakeWorkload() {
  SyntheticWorkloadParams params;
  params.depth = 8;  // one class per (potential) core
  params.granules_per_segment = 64;
  params.own_reads = 1;
  params.own_writes = 1;
  params.upper_reads = 4;  // the cross-segment-read-heavy part
  params.read_only_fraction = 0.0;
  return SyntheticWorkload(params);
}

struct Measurement {
  ExecutorStats stats;
  double spins_per_sec = 0.0;  // host speed adjacent to the winning rep
};

Measurement MeasureThroughput(ControllerKind kind,
                              const SyntheticWorkload& workload,
                              const HierarchySchema* schema, int threads,
                              bool epoch_mode = false) {
  Measurement best;
  NormalizedBest selector;
  for (int rep = 0; rep < kReps; ++rep) {
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    auto cc = CreateController(kind, db.get(), &clock, schema);
    cc->recorder().set_enabled(false);
    ExecutorStats stats;
    if (epoch_mode) {
      EpochExecutorOptions options;
      options.num_threads = threads;
      options.epoch_size = kEpochSize;
      stats = RunWorkloadEpochs(*cc, workload, kTxnsPerRun, options);
    } else {
      ExecutorOptions options;
      options.num_threads = threads;
      stats = RunWorkload(*cc, workload, kTxnsPerRun, options);
    }
    if (selector.Offer(stats.Throughput())) best.stats = stats;
  }
  best.spins_per_sec = selector.spins_per_sec();
  return best;
}

// --- Hand vs inferred hierarchy on the example applications. -----------
//
// The automatic-decomposition acceptance bar: trace each example workload
// once, infer a hierarchy from the trace alone (segment granularity, the
// structure the controller actually runs), and measure single-thread
// throughput under both the hand-written and the inferred schema. The
// report rows feed the regression gate; the inferred structure must stay
// within a few percent of hand (>= 0.9x).

using MakeDbFn = std::function<std::unique_ptr<Database>()>;

double MeasureExampleT1(const Workload& workload,
                        const HierarchySchema& schema,
                        const MakeDbFn& make_db, std::uint64_t txns) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto db = make_db();
    LogicalClock clock;
    HddController cc(db.get(), &clock, &schema, {});
    cc.recorder().set_enabled(false);
    ExecutorOptions options;
    options.num_threads = 1;
    options.seed = 7;
    const ExecutorStats stats = RunWorkload(cc, workload, txns, options);
    best = std::max(best, stats.Throughput());
  }
  return best;
}

// Traces one run under the hand schema, infers at segment granularity,
// and rebuilds a declared spec over the physical segment ids (txn_class
// values in the workload programs are root-segment ids, so the inferred
// schema must speak the same ids). Mirrors the pipeline proven in
// tests/test_differential_decompose.cc; here it feeds the bench rows.
HierarchySchema InferExampleSchema(const Workload& workload,
                                   const HierarchySchema& hand_schema,
                                   const PartitionSpec& hand_spec,
                                   const MakeDbFn& make_db,
                                   std::uint64_t txns) {
  auto db = make_db();
  FootprintRecorder recorder;
  LogicalClock clock;
  HddControllerOptions copts;
  copts.footprint = &recorder;
  HddController cc(db.get(), &clock, &hand_schema, copts);
  cc.recorder().set_enabled(false);
  ExecutorOptions options;
  options.num_threads = 1;
  options.seed = 7;
  (void)RunWorkload(cc, workload, txns, options);

  FootprintTrace seg_trace;
  for (const RawFootprint& fp : recorder.Drain()) {
    std::vector<std::uint32_t> writes, reads;
    for (std::uint64_t p : fp.writes)
      writes.push_back(FootprintRecorder::Segment(p));
    for (std::uint64_t p : fp.reads)
      reads.push_back(FootprintRecorder::Segment(p));
    seg_trace.Add(std::move(writes), std::move(reads));
  }
  const std::uint32_t num_segments =
      static_cast<std::uint32_t>(db->num_segments());
  auto inferred = InferBestDecomposition(num_segments, seg_trace);
  if (!inferred.ok() ||
      !ValidateDecomposition(inferred->decomposition, num_segments).ok() ||
      !ValidateAgainstTrace(inferred->decomposition, seg_trace).ok()) {
    std::cerr << "inference failed: " << inferred.status() << "\n";
    std::exit(1);
  }
  PartitionSpec spec;
  spec.segment_names = hand_spec.segment_names;
  for (const TracedFootprint& type : inferred->shaping_types) {
    if (type.write_granules.size() != 1) {
      std::cerr << "traced type writes " << type.write_granules.size()
                << " physical segments — unhostable without data movement\n";
      std::exit(1);
    }
    TransactionTypeSpec t;
    t.root_segment = static_cast<SegmentId>(type.write_granules[0]);
    t.name = "inferred_" + std::to_string(spec.transaction_types.size());
    for (std::uint32_t r : type.read_granules) {
      t.read_segments.push_back(static_cast<SegmentId>(r));
    }
    spec.transaction_types.push_back(std::move(t));
  }
  auto schema = HierarchySchema::Create(spec);
  if (!schema.ok()) {
    std::cerr << "inferred spec rejected: " << schema.status() << "\n";
    std::exit(1);
  }
  return std::move(schema).value();
}

void RunHandVsInferred(RunReport& report) {
  std::cout << "\n=== hand vs inferred hierarchy, single thread ("
            << kTxnsPerRun << " txns/run) ===\n";
  std::cout << std::left << std::setw(18) << "workload" << std::right
            << std::setw(14) << "hand" << std::setw(14) << "inferred"
            << std::setw(9) << "ratio" << "   (txn/s)\n";

  BankingWorkloadParams bank_params;
  bank_params.accounts = 16;
  bank_params.deposit_weight = 0;
  bank_params.transfer_weight = 0.9;
  bank_params.audit_weight = 0.1;
  BankingWorkload bank(bank_params);

  InventoryWorkloadParams inv_params;
  inv_params.items = 8;
  inv_params.event_slots_per_item = 2;
  InventoryWorkload inventory(inv_params);

  InventoryWorkloadParams walls_params = inv_params;
  walls_params.type1_weight = 0.3;
  walls_params.type2_weight = 0.2;
  walls_params.type3_weight = 0.1;
  walls_params.type4_weight = 0.1;
  walls_params.read_only_weight = 0.3;
  InventoryWorkload walls(walls_params);

  struct Example {
    const char* name;
    const Workload& workload;
    PartitionSpec hand_spec;
    MakeDbFn make_db;
  };
  const Example examples[] = {
      {"bank_teller", bank, bank.Spec(),
       [&] { return bank.MakeDatabase(); }},
      {"inventory_app", inventory, InventoryWorkload::Spec(),
       [&] { return inventory.MakeDatabase(); }},
      {"analytics_walls", walls, InventoryWorkload::Spec(),
       [&] { return walls.MakeDatabase(); }},
  };
  for (const Example& ex : examples) {
    auto hand_schema = HierarchySchema::Create(ex.hand_spec);
    if (!hand_schema.ok()) {
      std::cerr << ex.name << ": hand spec rejected\n";
      std::exit(1);
    }
    const HierarchySchema inferred_schema = InferExampleSchema(
        ex.workload, *hand_schema, ex.hand_spec, ex.make_db, kTxnsPerRun);
    const double hand =
        MeasureExampleT1(ex.workload, *hand_schema, ex.make_db, kTxnsPerRun);
    const double inferred = MeasureExampleT1(ex.workload, inferred_schema,
                                             ex.make_db, kTxnsPerRun);
    const double ratio = hand > 0 ? inferred / hand : 0.0;
    std::cout << std::left << std::setw(18) << ex.name << std::right
              << std::setw(14) << std::fixed << std::setprecision(0) << hand
              << std::setw(14) << inferred << std::setw(8)
              << std::setprecision(2) << ratio << "x\n";
    report.AddRow(std::string(ex.name) + "_hand_t1")
        .Metric("txn_per_sec", hand);
    report.AddRow(std::string(ex.name) + "_inferred_t1")
        .Metric("txn_per_sec", inferred)
        .Metric("ratio_vs_hand", ratio);
  }
}

void Run(int argc, char** argv) {
  const SyntheticWorkload workload = MakeWorkload();
  auto schema = HierarchySchema::Create(workload.Spec());

  std::cout << "=== committed-txn throughput vs worker threads "
               "(synthetic chain depth 8, upper_reads=4, " << kTxnsPerRun
            << " txns/run) ===\n"
            << "host has " << std::thread::hardware_concurrency()
            << " hardware threads\n\n";
  std::cout << std::left << std::setw(10) << "threads" << std::right;
  for (const char* name : {"hdd", "hdd_epoch", "mvto", "2pl"}) {
    std::cout << std::setw(14) << name << std::setw(10) << "x1";
  }
  std::cout << "   (txn/s, speedup vs 1 thread)\n";

  const std::optional<std::string> trace_path = TracePathFromArgs(argc, argv);
  if (trace_path) TraceRecorder::Enable();

  RunReport report("scaling");
  // Bracketing the sweep and keeping the slower reading means a host
  // slowdown that begins mid-sweep still shows up in the reference.
  const double cal_before = CalibrationSpinsPerSec();
  // hdd appears twice: once per-txn, once under the epoch/batch executor
  // (same controller, BeginEpoch/BeginBatch admission, epoch size
  // HDD_BENCH_EPOCH_SIZE).
  constexpr ControllerKind kKinds[] = {
      ControllerKind::kHdd, ControllerKind::kHdd, ControllerKind::kMvto,
      ControllerKind::kTwoPhase};
  constexpr const char* kKindNames[] = {"hdd", "hdd_epoch", "mvto", "2pl"};
  constexpr bool kEpochMode[] = {false, true, false, false};
  double base[4] = {0, 0, 0, 0};
  for (int threads : EnvListOr("HDD_BENCH_THREADS", {1, 2, 4, 8, 16})) {
    std::cout << std::left << std::setw(10) << threads << std::right;
    for (int k = 0; k < 4; ++k) {
      const Measurement m = MeasureThroughput(kKinds[k], workload, &*schema,
                                              threads, kEpochMode[k]);
      const double tput = m.stats.Throughput();
      if (base[k] == 0) base[k] = tput;
      std::cout << std::setw(14) << std::fixed << std::setprecision(0)
                << tput << std::setw(9) << std::setprecision(2)
                << (base[k] > 0 ? tput / base[k] : 0.0) << "x";
      report
          .AddRow(std::string(kKindNames[k]) + "_t" + std::to_string(threads))
          .Metric("txn_per_sec", tput)
          .Metric("spins_per_sec", m.spins_per_sec)
          .Metric("committed", m.stats.committed)
          .Metric("aborted_attempts", m.stats.aborted_attempts)
          .Metric("latency_p95_us", m.stats.latency_p95_us);
    }
    std::cout << "\n";
  }
  RunHandVsInferred(report);
  report.AddRow("calibration")
      .Metric("spins_per_sec",
              std::min(cal_before, CalibrationSpinsPerSec()));
  std::cout << "\nExpected shape (multi-core host): hdd scales with "
               "threads — Protocol A reads cross segments without any "
               "shared latch and Protocol B traffic splits across "
               "per-class shards — while mvto and 2pl serialize every "
               "operation on one controller mutex. hdd_epoch amortizes "
               "the remaining per-txn costs (activity-link evaluation, "
               "admission latching, the younger-reader check) across "
               "each batch and should sit well above per-txn hdd.\n";

  if (const auto path = ReportPathFromArgs(argc, argv)) {
    std::string error;
    if (!report.WriteFile(*path, &error)) {
      std::cerr << "report write failed: " << error << "\n";
      std::exit(1);
    }
    std::cout << "report written to " << *path << "\n";
  }
  if (trace_path) {
    std::ofstream os(*trace_path);
    if (!os) {
      std::cerr << "trace write failed: cannot open " << *trace_path << "\n";
      std::exit(1);
    }
    TraceRecorder::WriteChromeTrace(os);
    std::cout << "trace written to " << *trace_path << "\n";
  }
}

}  // namespace
}  // namespace hdd

int main(int argc, char** argv) {
  hdd::Run(argc, argv);
  return 0;
}
