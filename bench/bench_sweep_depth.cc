// §1.2.2 / §7.5: the deeper the application hierarchy, the larger the
// share of accesses HDD serves without registration. Sweeps synthetic
// chain depth and reports the unregistered-read fraction and throughput.

#include <iomanip>
#include <iostream>

#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/synthetic_workload.h"

namespace hdd {
namespace {

void Run() {
  std::cout << "=== hierarchy-depth sweep (synthetic chain, 800 txns, "
               "4 threads) ===\n\n";
  std::cout << std::left << std::setw(8) << "depth" << std::right
            << std::setw(16) << "hdd unreg%" << std::setw(14)
            << "hdd txn/s" << std::setw(14) << "2pl txn/s" << std::setw(14)
            << "to txn/s" << std::setw(14) << "sdd1 blk-rd" << "\n";

  for (int depth : {1, 2, 3, 4, 6, 8}) {
    SyntheticWorkloadParams params;
    params.depth = depth;
    params.granules_per_segment = 32;
    params.read_only_fraction = 0.1;
    SyntheticWorkload workload(params);
    auto schema = HierarchySchema::Create(workload.Spec());
    auto make_db = [&] { return workload.MakeDatabase(); };
    ExecutorOptions options;
    options.num_threads = 4;

    auto hdd_row = MeasureController(ControllerKind::kHdd, workload,
                                     make_db, &*schema, 800, options);
    auto tp_row = MeasureController(ControllerKind::kTwoPhase, workload,
                                    make_db, &*schema, 800, options);
    auto to_row = MeasureController(ControllerKind::kTimestampOrdering,
                                    workload, make_db, &*schema, 800,
                                    options);
    auto sdd_row = MeasureController(ControllerKind::kSdd1, workload,
                                     make_db, &*schema, 800, options);

    const double unreg_fraction =
        static_cast<double>(hdd_row.unregistered_reads) /
        static_cast<double>(hdd_row.unregistered_reads +
                            hdd_row.read_timestamps + 1);
    std::cout << std::left << std::setw(8) << depth << std::right
              << std::setw(15) << std::fixed << std::setprecision(1)
              << 100 * unreg_fraction << "%" << std::setw(14)
              << static_cast<std::uint64_t>(hdd_row.stats.Throughput())
              << std::setw(14)
              << static_cast<std::uint64_t>(tp_row.stats.Throughput())
              << std::setw(14)
              << static_cast<std::uint64_t>(to_row.stats.Throughput())
              << std::setw(14) << sdd_row.blocked_reads << "\n";
  }
  std::cout << "\nExpected shape: the unregistered share rises with depth "
               "(more reads land in higher segments); sdd1's blocked "
               "reads rise with depth while hdd never blocks a "
               "cross-class read.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
