// Figure 6 machinery: evaluation cost of the activity link functions —
// the per-read overhead Protocol A pays INSTEAD of writing a read
// timestamp — versus hierarchy depth and activity-history size.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "hdd/link_functions.h"
#include "hdd/time_wall.h"

namespace hdd {
namespace {

struct Fixture {
  std::unique_ptr<TstAnalysis> tst;
  std::vector<ClassActivityTable> tables;
  std::unique_ptr<ActivityLinkEvaluator> eval;
  Timestamp now = 1;

  // Chain of `depth` classes with `history` finished txns per class and a
  // couple of live ones.
  Fixture(int depth, int history) {
    Digraph g(depth);
    for (int c = depth - 1; c > 0; --c) g.AddArc(c, c - 1);
    auto analysis = TstAnalysis::Create(g);
    tst = std::make_unique<TstAnalysis>(std::move(analysis).value());
    tables.resize(depth);
    Rng rng(13);
    for (int c = 0; c < depth; ++c) {
      for (int h = 0; h < history; ++h) {
        const Timestamp begin = ++now;
        tables[c].OnBegin(begin);
        tables[c].OnFinish(begin, begin + 1 + rng.NextBounded(5));
        now += 2;
      }
      tables[c].OnBegin(++now);  // one live txn per class
    }
    eval = std::make_unique<ActivityLinkEvaluator>(tst.get(), &tables);
  }
};

void BM_ActivityLinkA(benchmark::State& state) {
  Fixture fx(static_cast<int>(state.range(0)),
             static_cast<int>(state.range(1)));
  const ClassId bottom = fx.tst->graph().num_nodes() - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.eval->A(bottom, 0, fx.now));
  }
}
BENCHMARK(BM_ActivityLinkA)
    ->Args({2, 100})
    ->Args({4, 100})
    ->Args({8, 100})
    ->Args({4, 1000})
    ->Args({4, 10000});

void BM_IOldQuery(benchmark::State& state) {
  Fixture fx(2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.tables[0].OldestActiveAt(fx.now));
  }
}
BENCHMARK(BM_IOldQuery)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ComputeTimeWall(benchmark::State& state) {
  Fixture fx(static_cast<int>(state.range(0)), 200);
  // Finish the live txns so C^late is computable.
  for (auto& table : fx.tables) {
    const Timestamp live = table.OldestActiveNow();
    table.OnFinish(live, ++fx.now);
  }
  const ClassId anchor = PickWallAnchor(*fx.tst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTimeWall(
        *fx.eval, fx.tst->graph().num_nodes(), anchor, fx.now));
  }
}
BENCHMARK(BM_ComputeTimeWall)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace hdd

BENCHMARK_MAIN();
