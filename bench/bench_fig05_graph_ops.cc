// Figure 5 machinery: cost of the graph-theoretic operations backing the
// decomposition — transitive-semi-tree recognition, transitive reduction,
// critical paths and UCPs — as the hierarchy grows.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/decomposition.h"
#include "graph/semi_tree.h"

namespace hdd {
namespace {

// Random TST: a random tree (each node points at a random earlier node —
// arcs low->high toward node 0) plus transitively induced shortcuts.
Digraph RandomTst(int n, Rng& rng) {
  Digraph g(n);
  std::vector<NodeId> parent(n, -1);
  for (NodeId v = 1; v < n; ++v) {
    parent[v] = static_cast<NodeId>(rng.NextBounded(v));
    g.AddArc(v, parent[v]);
  }
  // Shortcuts along ancestor chains.
  for (NodeId v = 1; v < n; ++v) {
    NodeId ancestor = parent[v];
    while (ancestor > 0 && rng.NextBool(0.3)) {
      ancestor = parent[ancestor];
      g.AddArc(v, ancestor);
    }
  }
  return g;
}

void BM_IsTransitiveSemiTree(benchmark::State& state) {
  Rng rng(7);
  Digraph g = RandomTst(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsTransitiveSemiTree(g));
  }
}
BENCHMARK(BM_IsTransitiveSemiTree)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_TransitiveReduction(benchmark::State& state) {
  Rng rng(8);
  Digraph g = RandomTst(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransitiveReduction(g));
  }
}
BENCHMARK(BM_TransitiveReduction)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_TstAnalysisCreate(benchmark::State& state) {
  Rng rng(9);
  Digraph g = RandomTst(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    auto analysis = TstAnalysis::Create(g);
    benchmark::DoNotOptimize(analysis.ok());
  }
}
BENCHMARK(BM_TstAnalysisCreate)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_CriticalPathQuery(benchmark::State& state) {
  Rng rng(10);
  const int n = static_cast<int>(state.range(0));
  Digraph g = RandomTst(n, rng);
  auto analysis = TstAnalysis::Create(g);
  NodeId q = n - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis->CriticalPath(q, 0));
  }
}
BENCHMARK(BM_CriticalPathQuery)->Arg(8)->Arg(32)->Arg(64);

void BM_UcpQuery(benchmark::State& state) {
  Rng rng(11);
  const int n = static_cast<int>(state.range(0));
  Digraph g = RandomTst(n, rng);
  auto analysis = TstAnalysis::Create(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis->Ucp(n - 1, n - 2));
  }
}
BENCHMARK(BM_UcpQuery)->Arg(8)->Arg(32)->Arg(64);

void BM_MakeTstMergePlan(benchmark::State& state) {
  Rng rng(12);
  const int n = static_cast<int>(state.range(0));
  // Random DAG (usually not a semi-tree): exercises the §7.2.1 transform.
  Digraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.NextBool(0.25)) g.AddArc(v, u);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeTstMergePlan(g));
  }
}
BENCHMARK(BM_MakeTstMergePlan)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace hdd

BENCHMARK_MAIN();
