// §7.3: multi-version store maintenance. Measures version-chain growth
// without GC and the effect of collecting at different cadences using the
// controller's safe horizon, plus the cost of a collection pass.

#include <chrono>
#include <iomanip>
#include <iostream>

#include "engine/executor.h"
#include "engine/inventory_workload.h"
#include "hdd/hdd_controller.h"

namespace hdd {
namespace {

void Run() {
  std::cout << "=== section 7.3: version garbage collection ===\n\n";
  std::cout << std::left << std::setw(16) << "GC cadence" << std::right
            << std::setw(16) << "peak versions" << std::setw(16)
            << "final versions" << std::setw(14) << "pruned"
            << std::setw(16) << "gc us/pass" << "\n";

  for (int cadence : {0, 800, 400, 100}) {  // 0 = never collect
    InventoryWorkloadParams params;
    params.items = 16;
    params.read_only_weight = 0.05;
    InventoryWorkload workload(params);
    auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    HddController cc(db.get(), &clock, &*schema);

    constexpr std::uint64_t kTotal = 3200;
    std::size_t peak = 0;
    std::size_t pruned = 0;
    double gc_us = 0;
    int passes = 0;
    ExecutorOptions options;
    options.num_threads = 2;
    const std::uint64_t step = cadence == 0 ? kTotal : cadence;
    for (std::uint64_t done = 0; done < kTotal; done += step) {
      (void)RunWorkload(cc, workload, step, options);
      peak = std::max(peak, db->TotalVersions());
      if (cadence != 0) {
        (void)cc.ReleaseNewWall();  // unpin old walls before collecting
        const auto t0 = std::chrono::steady_clock::now();
        pruned += db->CollectGarbage(cc.SafeGcHorizon());
        const auto t1 = std::chrono::steady_clock::now();
        gc_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
        ++passes;
      }
    }
    std::cout << std::left << std::setw(16)
              << (cadence == 0 ? std::string("never")
                               : "every " + std::to_string(cadence))
              << std::right << std::setw(16) << peak << std::setw(16)
              << db->TotalVersions() << std::setw(14) << pruned
              << std::setw(16) << std::fixed << std::setprecision(1)
              << (passes > 0 ? gc_us / passes : 0.0) << "\n";
  }
  std::cout << "\nExpected shape: without GC version count grows with "
               "every committed write; frequent GC caps the store near "
               "one live version per granule at modest per-pass cost.\n";
}

void ActivityTrimAblation() {
  std::cout << "\n--- activity-history trimming (idle-point) ablation "
               "---\n";
  std::cout << std::left << std::setw(14) << "auto_trim" << std::right
            << std::setw(22) << "history records kept" << "\n";
  for (bool auto_trim : {false, true}) {
    InventoryWorkloadParams params;
    params.items = 16;
    params.read_only_weight = 0;
    InventoryWorkload workload(params);
    auto schema = HierarchySchema::Create(InventoryWorkload::Spec());
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    HddControllerOptions options;
    options.auto_trim_history = auto_trim;
    HddController cc(db.get(), &clock, &*schema, options);
    // Single worker: every commit is an idle point, the trimmer's best
    // case; multi-worker runs trim at whatever idle points occur.
    ExecutorOptions exec;
    exec.num_threads = 1;
    (void)RunWorkload(cc, workload, 2000, exec);
    std::cout << std::left << std::setw(14) << (auto_trim ? "on" : "off")
              << std::right << std::setw(22) << cc.ActivityHistorySize()
              << "\n";
  }
  std::cout << "\nExpected shape: with trimming the activity tables stay "
               "O(active txns); without, they grow with every committed "
               "transaction.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  hdd::ActivityTrimAblation();
  return 0;
}
