// bench_dist: the sharded deployment's headline numbers. Three things:
//
//  1. 1-node vs 2/4-shard committed throughput of the same total
//     workload through DistWorld on plain threads (SimTransport with no
//     faults — an in-process message hub, so this measures protocol
//     work, not kernel sockets).
//  2. The per-transaction message table (§7.5 made live): per-type dist
//     messages per commit, HDD vs the SDD-1-lite comparator. HDD's
//     registration_messages is zero BY CONSTRUCTION (the message set has
//     no such type); SDD-1-lite charges one registration per remote
//     snapshot read on the same traffic. The bench exits non-zero if
//     either side of that comparison degenerates.
//  3. A 2-shard SOCKET row: two ShardServers in-process over real
//     loopback TCP, driven through their net front ends — the
//     committed-throughput row the acceptance gate wants on this host.
//
// Knobs: HDD_BENCH_DIST_TXNS (total txns per sim row, default 2000),
//        HDD_BENCH_DIST_SOCKET_TXNS (per client thread, default 300),
//        HDD_BENCH_REPS (best-of, default 3).
// Report: --report=PATH (bench name "dist", baseline BENCH_8.json).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dist/dist_world.h"
#include "dist/shard_server.h"
#include "net/client.h"
#include "net/protocol.h"
#include "obs/report.h"

namespace hdd {
namespace {

struct SimRowResult {
  double txn_per_sec = 0;
  double spins = 0;
  std::uint64_t committed = 0;
  std::uint64_t per_type[kNumDistMsgTypes] = {0};
  std::uint64_t total_messages = 0;
};

DistWorldOptions SimOptions(int num_nodes, std::uint64_t total_txns,
                            bool with_2pc_override) {
  DistWorldOptions options;
  options.num_nodes = num_nodes;
  options.depth = 4;
  options.granules_per_segment = 8;
  options.txns_per_node = static_cast<int>(
      total_txns / static_cast<std::uint64_t>(num_nodes));
  options.workers_per_node = 2;
  options.pumps_per_node = 2;
  options.read_only_fraction = 0.25;
  options.own_writes = 2;
  options.upper_reads = 1;
  if (with_2pc_override && num_nodes > 1) {
    // Segment 3's chains live at node 0 while its class stays homed at
    // the tail node: every class-3 update two-phases its commit.
    options.owner_overrides.push_back({SegmentId{3}, 0});
  }
  return options;
}

bool RunSimRow(const DistWorldOptions& options, int reps, SimRowResult* out) {
  NormalizedBest best;
  for (int rep = 0; rep < reps; ++rep) {
    DistWorld world(options, /*sched=*/nullptr);
    if (!world.init_error().empty()) {
      std::cerr << "world init failed: " << world.init_error() << "\n";
      return false;
    }
    const auto start = std::chrono::steady_clock::now();
    const std::string run = world.RunWorkload();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (!run.empty()) {
      std::cerr << "run failed: " << run << "\n";
      return false;
    }
    const std::string check = world.CheckHistory();
    if (!check.empty()) {
      std::cerr << "history check failed: " << check << "\n";
      return false;
    }
    const double tput =
        seconds > 0 ? static_cast<double>(world.committed()) / seconds : 0;
    if (best.Offer(tput)) {
      out->committed = world.committed();
      out->total_messages = world.transport().counters().total();
      for (int t = 0; t < kNumDistMsgTypes; ++t) {
        out->per_type[t] =
            world.transport().counters().Get(static_cast<DistMsgType>(t));
      }
    }
  }
  out->txn_per_sec = best.value();
  out->spins = best.spins_per_sec();
  return true;
}

void FillMessageMetrics(const SimRowResult& row, RunReport::Row& report_row) {
  const double commits = row.committed > 0
                             ? static_cast<double>(row.committed)
                             : 1.0;
  const auto per_commit = [&](DistMsgType type) {
    return static_cast<double>(
               row.per_type[static_cast<std::size_t>(type)]) /
           commits;
  };
  // HDD's registration count is structural zero (MessageCounters has no
  // such type to bump); SDD-1-lite would write one registration per
  // remote snapshot read on exactly this traffic.
  const std::uint64_t sdd1_registrations =
      row.per_type[static_cast<std::size_t>(DistMsgType::kSnapshotReq)];
  report_row.Metric("committed", row.committed)
      .Metric("msg_total_per_commit",
              static_cast<double>(row.total_messages) / commits)
      .Metric("msg_activity_per_commit", per_commit(DistMsgType::kActivityReq))
      .Metric("msg_snapshot_per_commit", per_commit(DistMsgType::kSnapshotReq))
      .Metric("msg_prepare_per_commit", per_commit(DistMsgType::kPrepareReq))
      .Metric("msg_commit_per_commit", per_commit(DistMsgType::kCommitReq))
      .Metric("registration_messages", std::uint64_t{0})
      .Metric("sdd1_registration_messages", sdd1_registrations)
      .Metric("sdd1_msg_total_per_commit",
              static_cast<double>(row.total_messages + sdd1_registrations) /
                  commits);
}

/// The socket row: 2 ShardServers over loopback TCP, one client thread
/// per node submitting updates at the home classes (plus a cross-shard
/// read-only every 4th request). Returns committed/sec, or < 0 on error.
double RunSocketRow(std::uint64_t txns_per_client,
                    std::uint64_t* committed_out,
                    std::uint64_t* sdd1_registrations_out) {
  // Port 0 is not usable for the dist transport (peers must know each
  // other's ports up front), so reserve ephemeral ports the same way the
  // smoke test does: bind 0, read the assignment back, close.
  auto pick = []() -> std::uint16_t {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return 0;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close(fd);
      return 0;
    }
    socklen_t len = sizeof(addr);
    getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    close(fd);
    return ntohs(addr.sin_port);
  };
  ShardServerOptions options0;
  options0.node_id = 0;
  options0.peers = {{"", pick()}, {"", pick()}};
  options0.depth = 4;
  options0.granules_per_segment = 32;
  options0.front_workers = 2;
  ShardServerOptions options1 = options0;
  options1.node_id = 1;
  ShardServer node0(options0);
  ShardServer node1(options1);
  if (!node0.init_error().empty() || !node1.init_error().empty()) {
    std::cerr << "shard init failed\n";
    return -1;
  }
  if (!node0.Start().ok() || !node1.Start().ok()) {
    std::cerr << "shard start failed\n";
    return -1;
  }

  std::atomic<std::uint64_t> committed{0};
  std::atomic<bool> failed{false};
  const auto client_body = [&](int node, std::uint16_t port) {
    SyncClient client;
    if (!client.Connect("127.0.0.1", port).ok()) {
      failed.store(true);
      return;
    }
    Rng rng(17 + static_cast<std::uint64_t>(node));
    // Node 0 homes classes {0,1}, node 1 homes {2,3}.
    const ClassId home_lo = node == 0 ? 0 : 2;
    for (std::uint64_t i = 0; i < txns_per_client; ++i) {
      RequestMsg msg;
      msg.type = NetMsgType::kSubmit;
      msg.submit.request_id = i + 1;
      const auto g = [&] {
        return static_cast<std::uint32_t>(rng.NextBounded(32));
      };
      if (i % 4 == 3) {
        msg.submit.read_only = true;
        msg.submit.read_scope = {0, 1, 2, 3};
        msg.submit.ops = {{WireOp::Kind::kRead, {0, g()}, 0},
                          {WireOp::Kind::kRead, {3, g()}, 0}};
      } else {
        const ClassId cls = home_lo + static_cast<ClassId>(i % 2);
        msg.submit.txn_class = cls;
        msg.submit.ops.clear();
        for (SegmentId upper = 0; upper < cls; ++upper) {
          msg.submit.ops.push_back({WireOp::Kind::kRead, {upper, g()}, 0});
        }
        msg.submit.ops.push_back(
            {WireOp::Kind::kWrite,
             {static_cast<SegmentId>(cls), g()},
             static_cast<Value>(i + 1)});
      }
      const Result<ResponseMsg> r = client.Call(msg);
      if (!r.ok() || r->type != NetMsgType::kResult) {
        failed.store(true);
        return;
      }
      if (r->committed) committed.fetch_add(1);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::thread c0(client_body, 0, node0.front_port());
  std::thread c1(client_body, 1, node1.front_port());
  c0.join();
  c1.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const std::uint64_t snapshots =
      node0.transport().counters().Get(DistMsgType::kSnapshotReq) +
      node1.transport().counters().Get(DistMsgType::kSnapshotReq);
  const bool clean = node0.Stop().ok() && node1.Stop().ok() &&
                     node0.transport_open_fds() == 0 &&
                     node1.transport_open_fds() == 0;
  if (failed.load() || !clean) {
    std::cerr << "socket row failed (client error or unclean shutdown)\n";
    return -1;
  }
  *committed_out = committed.load();
  *sdd1_registrations_out = snapshots;
  return seconds > 0 ? static_cast<double>(committed.load()) / seconds : 0;
}

int Run(int argc, char** argv) {
  const std::uint64_t total_txns = EnvOr("HDD_BENCH_DIST_TXNS", 2000);
  const std::uint64_t socket_txns =
      EnvOr("HDD_BENCH_DIST_SOCKET_TXNS", 300);
  const int reps = static_cast<int>(EnvOr("HDD_BENCH_REPS", 3));
  RunReport report("dist");

  struct RowSpec {
    const char* name;
    int nodes;
    bool with_2pc;
  };
  const RowSpec specs[] = {
      {"sim_1node", 1, false},
      {"sim_2shard", 2, false},
      {"sim_2shard_2pc", 2, true},
      {"sim_4shard", 4, false},
  };
  for (const RowSpec& spec : specs) {
    SimRowResult row;
    if (!RunSimRow(SimOptions(spec.nodes, total_txns, spec.with_2pc), reps,
                   &row)) {
      return 1;
    }
    RunReport::Row& report_row = report.AddRow(spec.name);
    report_row.Metric("txn_per_sec", row.txn_per_sec)
        .Metric("spins_per_sec", row.spins)
        .Metric("nodes", static_cast<std::uint64_t>(spec.nodes));
    FillMessageMetrics(row, report_row);
    const std::uint64_t sdd1 =
        row.per_type[static_cast<std::size_t>(DistMsgType::kSnapshotReq)];
    std::cout << spec.name << ": " << row.txn_per_sec << " txn/s, "
              << row.committed << " committed, "
              << static_cast<double>(row.total_messages) /
                     static_cast<double>(row.committed)
              << " msgs/commit (sdd1 would add " << sdd1
              << " registrations)\n";
    if (spec.nodes > 1) {
      // The acceptance claim, asserted: HDD ships cross-shard reads with
      // zero registrations while SDD-1-lite pays one per remote read.
      if (sdd1 == 0) {
        std::cerr << spec.name
                  << ": no cross-shard snapshot reads happened — the row "
                     "measured nothing\n";
        return 1;
      }
    }
  }

  std::uint64_t socket_committed = 0;
  std::uint64_t socket_sdd1 = 0;
  const double socket_tput =
      RunSocketRow(socket_txns, &socket_committed, &socket_sdd1);
  if (socket_tput < 0) return 1;
  if (socket_committed == 0 || socket_sdd1 == 0) {
    std::cerr << "socket row degenerate: committed=" << socket_committed
              << " sdd1_registrations=" << socket_sdd1 << "\n";
    return 1;
  }
  report.AddRow("socket_2shard")
      .Metric("txn_per_sec", socket_tput)
      .Metric("committed", socket_committed)
      .Metric("registration_messages", std::uint64_t{0})
      .Metric("sdd1_registration_messages", socket_sdd1)
      // Real loopback TCP + a remote clock service: hostage to the host.
      .Metric("gate_tolerance", 0.5);
  std::cout << "socket_2shard: " << socket_tput << " txn/s, "
            << socket_committed << " committed over real TCP\n";

  report.AddRow("calibration")
      .Metric("spins_per_sec", CalibrationSpinsPerSec());

  if (const auto path = ReportPathFromArgs(argc, argv)) {
    std::string error;
    if (!report.WriteFile(*path, &error)) {
      std::cerr << "report write failed: " << error << "\n";
      return 1;
    }
    std::cout << "report written to " << *path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace hdd

int main(int argc, char** argv) { return hdd::Run(argc, argv); }
