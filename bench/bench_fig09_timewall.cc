// Figure 9 / §5.2: time walls as consistency cuts. Measures (a) wall
// computation cost vs hierarchy depth, and (b) the staleness / release-
// interval trade-off of Protocol C's batched wall releases: releasing
// walls less often saves computation but serves read-only transactions
// older data.

#include <chrono>
#include <iomanip>
#include <iostream>

#include "engine/executor.h"
#include "engine/synthetic_workload.h"
#include "hdd/hdd_controller.h"

namespace hdd {
namespace {

void WallCostVsDepth() {
  std::cout << "--- (a) wall computation cost vs hierarchy depth ---\n";
  std::cout << std::left << std::setw(8) << "depth" << std::right
            << std::setw(14) << "us per wall" << "\n";
  for (int depth : {2, 3, 4, 6, 8}) {
    SyntheticWorkloadParams params;
    params.depth = depth;
    params.granules_per_segment = 16;
    params.read_only_fraction = 0;
    SyntheticWorkload workload(params);
    auto schema = HierarchySchema::Create(workload.Spec());
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    HddController cc(db.get(), &clock, &*schema);
    ExecutorOptions options;
    options.num_threads = 2;
    (void)RunWorkload(cc, workload, 600, options);  // build history

    constexpr int kWalls = 200;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kWalls; ++i) (void)cc.ReleaseNewWall();
    const auto t1 = std::chrono::steady_clock::now();
    std::cout << std::left << std::setw(8) << depth << std::right
              << std::setw(14) << std::fixed << std::setprecision(2)
              << std::chrono::duration<double, std::micro>(t1 - t0).count() /
                     kWalls
              << "\n";
  }
}

void StalenessVsInterval() {
  std::cout << "\n--- (b) staleness vs wall release interval ---\n"
            << "(staleness = logical ticks between the oldest wall "
               "component a reader is served and the clock when it "
               "begins; interval = update txns between releases)\n\n";
  std::cout << std::left << std::setw(10) << "interval" << std::right
            << std::setw(16) << "avg staleness" << std::setw(14)
            << "walls" << "\n";
  for (int interval : {10, 50, 100, 400}) {
    SyntheticWorkloadParams params;
    params.depth = 4;
    params.granules_per_segment = 16;
    params.read_only_fraction = 0;
    SyntheticWorkload workload(params);
    auto schema = HierarchySchema::Create(workload.Spec());
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    HddController cc(db.get(), &clock, &*schema);

    Rng rng(17);
    std::uint64_t index = 0;
    double staleness_sum = 0;
    int probes = 0;
    for (int batch = 0; batch < 1200 / interval; ++batch) {
      (void)cc.ReleaseNewWall();
      for (int i = 0; i < interval; ++i) {
        TxnProgram program = workload.Make(index++, rng);
        auto txn = cc.Begin(program.options);
        if (program.body(cc, *txn).ok()) {
          (void)cc.Commit(*txn);
        } else {
          (void)cc.Abort(*txn);
        }
      }
      // Probe: a reader arriving at the END of the interval is still
      // served the wall released at its start — the worst-case staleness
      // of batched releases (§5.2).
      auto reader = cc.Begin({.read_only = true});
      (void)cc.Read(*reader, {0, 0});
      (void)cc.Commit(*reader);
      staleness_sum +=
          static_cast<double>(clock.Now() - cc.SafeGcHorizon());
      ++probes;
    }
    std::cout << std::left << std::setw(10) << interval << std::right
              << std::setw(16) << std::fixed << std::setprecision(1)
              << staleness_sum / probes << std::setw(14) << cc.num_walls()
              << "\n";
  }
  std::cout << "\nExpected shape: wall cost grows mildly with depth; "
               "staleness grows with the release interval.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  std::cout << "=== Figure 9 / section 5.2: time walls ===\n\n";
  hdd::WallCostVsDepth();
  hdd::StalenessVsInterval();
  return 0;
}
