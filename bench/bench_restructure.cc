// §7.1.1 ablation: dynamic restructuring. Measures the latency of merging
// classes while unrelated classes keep running, and the throughput of the
// merged system before/after.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <thread>

#include "engine/executor.h"
#include "engine/synthetic_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

void Run() {
  std::cout << "=== section 7.1.1: dynamic restructuring ===\n\n";
  std::cout << std::left << std::setw(8) << "depth" << std::right
            << std::setw(18) << "merge latency us" << std::setw(16)
            << "txn/s before" << std::setw(16) << "txn/s after"
            << std::setw(14) << "serializable" << "\n";

  for (int depth : {3, 4, 6}) {
    SyntheticWorkloadParams params;
    params.depth = depth;
    params.granules_per_segment = 16;
    params.read_only_fraction = 0;
    SyntheticWorkload workload(params);
    auto schema = HierarchySchema::Create(workload.Spec());
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    HddController cc(db.get(), &clock, &*schema);

    ExecutorOptions options;
    options.num_threads = 2;
    ExecutorStats before = RunWorkload(cc, workload, 600, options);

    // Merge the two lowest classes while the rest of the world is idle
    // but warm (activity tables populated).
    const auto t0 = std::chrono::steady_clock::now();
    auto merged = cc.Restructure({depth - 1, depth - 2}, {});
    const auto t1 = std::chrono::steady_clock::now();
    if (!merged.ok()) {
      std::cerr << merged.status() << "\n";
      continue;
    }

    // After the merge the old per-depth classes are renumbered; the
    // workload must target the live classes, so re-derive a workload over
    // the merged structure by declaring per-segment classes dynamically.
    class MergedWorkload : public Workload {
     public:
      MergedWorkload(const SyntheticWorkload& inner, const HddController& cc)
          : inner_(inner), cc_(cc) {}
      TxnProgram Make(std::uint64_t index, Rng& rng) const override {
        TxnProgram program = inner_.Make(index, rng);
        if (!program.options.read_only) {
          // Remap the declared class onto the merged class structure.
          program.options.txn_class =
              cc_.ClassOfSegment(program.options.txn_class);
        }
        return program;
      }

     private:
      const SyntheticWorkload& inner_;
      const HddController& cc_;
    };
    MergedWorkload merged_workload(workload, cc);
    ExecutorStats after = RunWorkload(cc, merged_workload, 600, options);

    const bool serializable =
        CheckSerializability(cc.recorder()).serializable;
    std::cout << std::left << std::setw(8) << depth << std::right
              << std::setw(18) << std::fixed << std::setprecision(1)
              << std::chrono::duration<double, std::micro>(t1 - t0).count()
              << std::setw(16)
              << static_cast<std::uint64_t>(before.Throughput())
              << std::setw(16)
              << static_cast<std::uint64_t>(after.Throughput())
              << std::setw(14) << (serializable ? "yes" : "NO") << "\n";
  }
  std::cout << "\nExpected shape: merging is cheap when the affected "
               "classes are drained; the whole history (across the merge) "
               "stays serializable.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
