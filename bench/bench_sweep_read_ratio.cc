// §1.2 headline claim, swept: how much read-synchronization work each
// technique performs as the share of derived-data (cross-class-reading)
// transactions grows. Registration per committed transaction is the
// paper's "expensive operation" count.

#include <iomanip>
#include <iostream>

#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"

namespace hdd {
namespace {

void Run() {
  std::cout << "=== read-registration overhead vs derived-transaction "
               "share (inventory app, 1000 txns) ===\n\n";
  std::cout << std::left << std::setw(12) << "derived%" << std::right;
  for (const char* name : {"hdd", "2pl", "to", "mvto", "sdd1"}) {
    std::cout << std::setw(12) << name;
  }
  std::cout << "   (registrations per committed txn)\n";

  for (double derived : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    InventoryWorkloadParams params;
    params.items = 16;
    params.type1_weight = 1.0 - derived;
    params.type2_weight = derived * 0.4;
    params.type3_weight = derived * 0.4;
    params.type4_weight = derived * 0.2;
    params.read_only_weight = 0;
    InventoryWorkload workload(params);
    auto schema = HierarchySchema::Create(InventoryWorkload::Spec());

    std::cout << std::left << std::setw(12) << derived << std::right;
    for (ControllerKind kind :
         {ControllerKind::kHdd, ControllerKind::kTwoPhase,
          ControllerKind::kTimestampOrdering, ControllerKind::kMvto,
          ControllerKind::kSdd1}) {
      ExecutorOptions options;
      options.num_threads = 4;
      ComparisonRow row = MeasureController(
          kind, workload, [&] { return workload.MakeDatabase(); }, &*schema,
          1000, options);
      const double per_txn =
          static_cast<double>(row.read_locks + row.read_timestamps) /
          static_cast<double>(row.stats.committed);
      std::cout << std::setw(12) << std::fixed << std::setprecision(2)
                << per_txn;
    }
    std::cout << "\n";
  }
  std::cout << "\nExpected shape: hdd's registrations stay bounded by its "
               "root-segment accesses and FALL as the mix shifts toward "
               "cross-class readers, while 2pl/to/mvto grow with every "
               "read; sdd1 registers nothing but pays in blocking "
               "(see bench_fig10).\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
