// §7.4 efficacy: modeled cost per committed transaction as the price of
// read registration varies. The simulator's counters feed the cost model
// of engine/cost_model.h; the registration price is swept from "free"
// (in-memory lock table) to "a database write" (the paper's setting).

#include <iomanip>
#include <iostream>
#include <map>

#include "engine/cost_model.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"

namespace hdd {
namespace {

void Run() {
  InventoryWorkloadParams params;
  params.items = 16;
  params.read_only_weight = 0.10;
  params.yield_between_ops = true;  // surface real interleaving costs
  InventoryWorkload workload(params);
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());

  // Measure once per controller; price afterwards.
  const std::vector<ControllerKind> kinds = {
      ControllerKind::kHdd, ControllerKind::kTwoPhase,
      ControllerKind::kTimestampOrdering, ControllerKind::kMvto,
      ControllerKind::kMv2pl, ControllerKind::kSdd1,
      ControllerKind::kOcc, ControllerKind::kSerial};

  std::cout << "=== section 7.4: modeled cost per committed txn (us) as "
               "read registration gets more expensive ===\n"
               "(inventory app, 1500 txns; other costs fixed: read 1us, "
               "write 2us, block 50us, restart 20us, link-eval 0.5us)\n\n";
  std::cout << std::left << std::setw(12) << "reg. cost" << std::right;
  for (ControllerKind kind : kinds) {
    std::cout << std::setw(10) << ControllerKindName(kind);
  }
  std::cout << "\n";

  // Collect the raw counters once.
  ExecutorOptions options;
  options.num_threads = 4;
  std::map<ControllerKind, std::pair<ExecutorStats, CcMetrics>> raw;
  for (ControllerKind kind : kinds) {
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    auto cc = CreateController(kind, db.get(), &clock, &*schema);
    ExecutorStats stats = RunWorkload(*cc, workload, 1500, options);
    auto& slot = raw[kind];
    slot.first = stats;
    // CcMetrics is not copyable (atomics); transfer the counts.
    const CcMetrics& m = cc->metrics();
    slot.second.read_locks_acquired = m.read_locks_acquired.load();
    slot.second.write_locks_acquired = m.write_locks_acquired.load();
    slot.second.read_timestamps_written = m.read_timestamps_written.load();
    slot.second.unregistered_reads = m.unregistered_reads.load();
    slot.second.blocked_reads = m.blocked_reads.load();
    slot.second.blocked_writes = m.blocked_writes.load();
    slot.second.aborts = m.aborts.load();
    slot.second.commits = m.commits.load();
    slot.second.versions_created = m.versions_created.load();
    slot.second.version_reads = m.version_reads.load();
  }

  for (double reg_cost : {0.5, 2.0, 10.0, 50.0}) {
    CostModel model;
    model.registration_us = reg_cost;
    std::cout << std::left << std::setw(12) << reg_cost << std::right;
    for (ControllerKind kind : kinds) {
      const auto& [stats, metrics] = raw[kind];
      const CostEstimate cost = EstimateCost(metrics, stats, model);
      std::cout << std::setw(10) << std::fixed << std::setprecision(1)
                << cost.per_commit_us;
    }
    std::cout << "\n";
  }
  std::cout << "\nExpected shape: hdd's modeled cost is nearly flat in the "
               "registration price (only root-segment reads register), "
               "while 2pl/to/mvto grow linearly with it; the crossover "
               "where hdd wins moves left as registration gets more "
               "expensive — the paper's efficacy argument.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
