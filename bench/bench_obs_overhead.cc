// Cost of the observability layer itself: committed-txn throughput of the
// HDD controller on the scaling workload with the trace recorder runtime-
// disabled vs runtime-enabled (every span site live, per-thread rings
// filling). The acceptance target is <=5% overhead traced; built with
// -DHDD_TRACE=OFF the spans compile to nothing and the two rows must
// coincide (compiled_in=0 marks such a build in the report).
//
// Runs are interleaved (off, on, off, on, ...): the overhead is the
// median of the per-pair throughput ratios, so slow drift (thermal,
// co-tenant load) cancels within a pair and a preempted outlier rep
// cannot swing the estimate; the reported per-side throughputs are each
// side's best rep, the right statistic for the regression gate. The
// schedule recorder is off in both configurations — this bench isolates
// the tracing layer, not the audit bookkeeping.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/synthetic_workload.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace hdd {
namespace {

const std::uint64_t kTxnsPerRun = EnvOr("HDD_BENCH_TXNS", 4000);
// Many short reps beat few long ones on a busy host: best-of only needs
// ONE preemption-free window per side, and short runs make those likelier.
const int kRepetitions = static_cast<int>(EnvOr("HDD_BENCH_REPS", 7));

SyntheticWorkload MakeWorkload() {
  SyntheticWorkloadParams params;
  params.depth = 8;
  params.granules_per_segment = 64;
  params.own_reads = 1;
  params.own_writes = 1;
  params.upper_reads = 4;
  params.read_only_fraction = 0.0;
  return SyntheticWorkload(params);
}

double MeasureOnce(const SyntheticWorkload& workload,
                   const HierarchySchema* schema, int threads) {
  auto db = workload.MakeDatabase();
  LogicalClock clock;
  auto cc = CreateController(ControllerKind::kHdd, db.get(), &clock, schema);
  cc->recorder().set_enabled(false);
  ExecutorOptions options;
  options.num_threads = threads;
  return RunWorkload(*cc, workload, kTxnsPerRun, options).Throughput();
}

void Run(int argc, char** argv) {
  const SyntheticWorkload workload = MakeWorkload();
  auto schema = HierarchySchema::Create(workload.Spec());
  const int threads =
      static_cast<int>(EnvOr("HDD_BENCH_THREADS", 1));  // single value here

  std::cout << "=== tracing overhead (" << kTxnsPerRun << " txns/run, "
            << threads << " thread(s), best of " << kRepetitions
            << " interleaved reps) ===\n";

  const double cal_before = CalibrationSpinsPerSec();
  NormalizedBest sel_off;
  NormalizedBest sel_on;
  std::vector<double> ratios;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    TraceRecorder::Disable();
    const double off = MeasureOnce(workload, &*schema, threads);
    sel_off.Offer(off);
    TraceRecorder::Reset();
    TraceRecorder::Enable();
    const double on = MeasureOnce(workload, &*schema, threads);
    sel_on.Offer(on);
    if (off > 0) ratios.push_back(on / off);
  }
  const double best_off = sel_off.value();
  const double best_on = sel_on.value();
  const std::uint64_t events = TraceRecorder::Drain().size();
  const std::uint64_t dropped = TraceRecorder::dropped();
  TraceRecorder::Disable();

  double median_ratio = 1.0;
  if (!ratios.empty()) {
    std::sort(ratios.begin(), ratios.end());
    median_ratio = ratios[ratios.size() / 2];
  }
  const double overhead_pct = std::max(0.0, (1.0 - median_ratio) * 100.0);
  const bool compiled_in = HDD_TRACE_ENABLED != 0;

  std::cout << std::fixed << std::setprecision(0)
            << "trace off:  " << best_off << " txn/s\n"
            << "trace on:   " << best_on << " txn/s  ("
            << (compiled_in ? "instrumentation compiled in"
                            : "compiled out: rows must coincide")
            << ", " << events << " events retained, " << dropped
            << " dropped)\n"
            << std::setprecision(1) << "overhead:   " << overhead_pct
            << "% (median of per-pair ratios, target <=5%)\n";

  RunReport report("obs_overhead");
  report.AddRow("calibration")
      .Metric("spins_per_sec",
              std::min(cal_before, CalibrationSpinsPerSec()));
  report.AddRow("trace_off")
      .Metric("txn_per_sec", best_off)
      .Metric("spins_per_sec", sel_off.spins_per_sec());
  report.AddRow("trace_on")
      .Metric("txn_per_sec", best_on)
      .Metric("spins_per_sec", sel_on.spins_per_sec())
      .Metric("events_retained", events)
      .Metric("events_dropped", dropped);
  report.AddRow("summary")
      .Metric("overhead_pct", overhead_pct)
      .Metric("compiled_in", static_cast<std::uint64_t>(compiled_in));

  if (const auto path = ReportPathFromArgs(argc, argv)) {
    std::string error;
    if (!report.WriteFile(*path, &error)) {
      std::cerr << "report write failed: " << error << "\n";
      std::exit(1);
    }
    std::cout << "report written to " << *path << "\n";
  }
  if (const auto path = TracePathFromArgs(argc, argv)) {
    std::ofstream os(*path);
    if (!os) {
      std::cerr << "trace write failed: cannot open " << *path << "\n";
      std::exit(1);
    }
    TraceRecorder::WriteChromeTrace(os);
    std::cout << "trace written to " << *path << "\n";
  }
}

}  // namespace
}  // namespace hdd

int main(int argc, char** argv) {
  hdd::Run(argc, argv);
  return 0;
}
