// §1.3 (Papadimitriou 82): "the more versions a DBMS keeps, the higher
// the level of concurrency it may achieve." Runs MVTO with a bounded
// number of retained versions per granule — 1 degenerates toward
// single-version TO, 2 models the one-previous-version schemes (Bayer 80)
// — against long snapshot readers under an update stream, and measures
// how many reads die because their version was pruned.

#include <iomanip>
#include <iostream>
#include <thread>

#include "cc/mvto.h"
#include "engine/executor.h"
#include "engine/txn_program.h"
#include "storage/database.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

// Mix of fast writers and slow multi-granule snapshot readers: old
// readers are exactly who bounded version stores hurt.
class SnapshotReaderWorkload : public Workload {
 public:
  explicit SnapshotReaderWorkload(std::uint32_t granules)
      : granules_(granules) {}

  TxnProgram Make(std::uint64_t, Rng& rng) const override {
    TxnProgram program;
    program.options.txn_class = 0;
    if (rng.NextBool(0.6)) {
      const std::uint32_t g =
          static_cast<std::uint32_t>(rng.NextBounded(granules_));
      program.body = [g](ConcurrencyController& cc,
                         const TxnDescriptor& txn) -> Status {
        HDD_ASSIGN_OR_RETURN(Value v, cc.Read(txn, {0, g}));
        return cc.Write(txn, {0, g}, v + 1);
      };
      return program;
    }
    const std::uint32_t granules = granules_;
    program.options.read_only = true;
    program.body = [granules](ConcurrencyController& cc,
                              const TxnDescriptor& txn) -> Status {
      Value sum = 0;
      for (std::uint32_t g = 0; g < granules; ++g) {
        // Yield between reads: the reader ages while writers churn.
        std::this_thread::yield();
        HDD_ASSIGN_OR_RETURN(Value v, cc.Read(txn, {0, g}));
        sum += v;
      }
      (void)sum;
      return Status::OK();
    };
    return program;
  }

 private:
  std::uint32_t granules_;
};

void Run() {
  std::cout << "=== section 1.3: the multi-version hierarchy "
               "(Papadimitriou 82) ===\n"
               "MVTO with at most K committed versions per granule; 2000 "
               "txns (60% hot writes, 40% slow snapshot scans), 4 "
               "threads\n\n";
  std::cout << std::left << std::setw(14) << "K versions" << std::right
            << std::setw(12) << "commits" << std::setw(14)
            << "conflict rst" << std::setw(16) << "total versions"
            << std::setw(14) << "serializable" << "\n";

  for (std::size_t max_versions : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{16},
                                   std::size_t{0}}) {
    Database db(1, 16, 0);
    LogicalClock clock;
    MvtoOptions options;
    options.max_versions = max_versions;
    Mvto cc(&db, &clock, options);
    SnapshotReaderWorkload workload(16);
    ExecutorOptions exec;
    exec.num_threads = 4;
    ExecutorStats stats = RunWorkload(cc, workload, 2000, exec);
    const bool serializable =
        CheckSerializability(cc.recorder()).serializable;
    std::cout << std::left << std::setw(14)
              << (max_versions == 0 ? std::string("unbounded")
                                    : std::to_string(max_versions))
              << std::right << std::setw(12) << stats.committed
              << std::setw(14) << stats.aborted_attempts << std::setw(16)
              << db.TotalVersions() << std::setw(14)
              << (serializable ? "yes" : "NO") << "\n";
  }
  std::cout << "\nExpected shape: conflict restarts FALL monotonically as "
               "K grows (more versions, more concurrency), at the price "
               "of retained versions; every configuration stays "
               "serializable.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
