// Figure 3: "if read locks are not used, an anomaly may occur."
// Randomized concurrent trials of the inventory application under 2PL
// with and without read registration, plus HDD — whose cross-class reads
// are ALSO unregistered yet never violate serializability.

#include <iomanip>
#include <iostream>

#include "cc/two_phase_locking.h"
#include "engine/executor.h"
#include "engine/inventory_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

constexpr int kTrials = 25;
constexpr std::uint64_t kTxnsPerTrial = 120;

InventoryWorkloadParams TrialParams() {
  InventoryWorkloadParams params;
  params.items = 2;  // tiny database maximizes conflict pressure
  params.event_slots_per_item = 1;
  params.read_only_weight = 0;
  params.yield_between_ops = true;
  return params;
}

struct TrialResult {
  int violations = 0;
  std::uint64_t registered_reads = 0;
  std::uint64_t unregistered_reads = 0;
};

template <typename MakeCc>
TrialResult RunTrials(const MakeCc& make_cc) {
  TrialResult result;
  InventoryWorkload workload(TrialParams());
  for (int trial = 0; trial < kTrials; ++trial) {
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    auto cc = make_cc(db.get(), &clock);
    ExecutorOptions options;
    options.num_threads = 4;
    options.seed = 100 + static_cast<std::uint64_t>(trial);
    (void)RunWorkload(*cc, workload, kTxnsPerTrial, options);
    if (!CheckSerializability(cc->recorder()).serializable) {
      ++result.violations;
    }
    result.registered_reads += cc->metrics().read_locks_acquired.load() +
                               cc->metrics().read_timestamps_written.load();
    result.unregistered_reads += cc->metrics().unregistered_reads.load();
  }
  return result;
}

void PrintRow(const std::string& name, const TrialResult& r) {
  std::cout << std::left << std::setw(26) << name << std::right
            << std::setw(8) << kTrials << std::setw(12) << r.violations
            << std::setw(14) << r.registered_reads << std::setw(14)
            << r.unregistered_reads << "\n";
}

void Run() {
  std::cout << "=== Figure 3: serializability vs read registration "
               "(2PL), "
            << kTrials << " randomized concurrent trials ===\n\n";
  std::cout << std::left << std::setw(26) << "configuration" << std::right
            << std::setw(8) << "trials" << std::setw(12) << "violations"
            << std::setw(14) << "reg. reads" << std::setw(14)
            << "unreg. reads" << "\n";

  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());

  PrintRow("2pl + read locks", RunTrials([](Database* db,
                                            LogicalClock* clock) {
             return std::make_unique<TwoPhaseLocking>(db, clock);
           }));
  PrintRow("2pl - read locks", RunTrials([](Database* db,
                                            LogicalClock* clock) {
             TwoPhaseLockingOptions options;
             options.register_reads = false;
             return std::make_unique<TwoPhaseLocking>(db, clock, options);
           }));
  PrintRow("hdd (unregistered reads)",
           RunTrials([&schema](Database* db, LogicalClock* clock) {
             return std::make_unique<HddController>(db, clock, &*schema);
           }));

  std::cout << "\nExpected shape: registered 2PL and HDD show 0 "
               "violations; unregistered 2PL shows > 0. HDD achieves 0 "
               "while registering no cross-class read.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
