// Figure 4: the timestamp-ordering analogue of Figure 3 — skipping read
// timestamps admits non-serializable executions, while HDD's unregistered
// cross-class reads stay safe.

#include <iomanip>
#include <iostream>

#include "cc/mvto.h"
#include "cc/timestamp_ordering.h"
#include "engine/executor.h"
#include "engine/inventory_workload.h"
#include "hdd/hdd_controller.h"
#include "txn/dependency_graph.h"

namespace hdd {
namespace {

constexpr int kTrials = 25;
constexpr std::uint64_t kTxnsPerTrial = 120;

InventoryWorkloadParams TrialParams() {
  InventoryWorkloadParams params;
  params.items = 2;
  params.event_slots_per_item = 1;
  params.read_only_weight = 0;
  params.yield_between_ops = true;
  return params;
}

struct TrialResult {
  int violations = 0;
  std::uint64_t registered_reads = 0;
  std::uint64_t unregistered_reads = 0;
};

template <typename MakeCc>
TrialResult RunTrials(const MakeCc& make_cc) {
  TrialResult result;
  InventoryWorkload workload(TrialParams());
  for (int trial = 0; trial < kTrials; ++trial) {
    auto db = workload.MakeDatabase();
    LogicalClock clock;
    auto cc = make_cc(db.get(), &clock);
    ExecutorOptions options;
    options.num_threads = 4;
    options.seed = 500 + static_cast<std::uint64_t>(trial);
    (void)RunWorkload(*cc, workload, kTxnsPerTrial, options);
    if (!CheckSerializability(cc->recorder()).serializable) {
      ++result.violations;
    }
    result.registered_reads += cc->metrics().read_timestamps_written.load();
    result.unregistered_reads += cc->metrics().unregistered_reads.load();
  }
  return result;
}

void PrintRow(const std::string& name, const TrialResult& r) {
  std::cout << std::left << std::setw(28) << name << std::right
            << std::setw(8) << kTrials << std::setw(12) << r.violations
            << std::setw(14) << r.registered_reads << std::setw(14)
            << r.unregistered_reads << "\n";
}

void Run() {
  std::cout << "=== Figure 4: serializability vs read timestamps "
               "(timestamp ordering), "
            << kTrials << " randomized concurrent trials ===\n\n";
  std::cout << std::left << std::setw(28) << "configuration" << std::right
            << std::setw(8) << "trials" << std::setw(12) << "violations"
            << std::setw(14) << "read stamps" << std::setw(14)
            << "unreg. reads" << "\n";

  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());

  PrintRow("to + read timestamps",
           RunTrials([](Database* db, LogicalClock* clock) {
             return std::make_unique<TimestampOrdering>(db, clock);
           }));
  PrintRow("to - read timestamps",
           RunTrials([](Database* db, LogicalClock* clock) {
             TimestampOrderingOptions options;
             options.register_reads = false;
             return std::make_unique<TimestampOrdering>(db, clock, options);
           }));
  PrintRow("mvto - read timestamps",
           RunTrials([](Database* db, LogicalClock* clock) {
             MvtoOptions options;
             options.register_reads = false;
             return std::make_unique<Mvto>(db, clock, options);
           }));
  PrintRow("hdd (unregistered reads)",
           RunTrials([&schema](Database* db, LogicalClock* clock) {
             return std::make_unique<HddController>(db, clock, &*schema);
           }));

  std::cout << "\nExpected shape: full TO and HDD show 0 violations; "
               "TO/MVTO without read timestamps show > 0.\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
