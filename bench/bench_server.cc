// End-to-end server bench: sustained txn/s and tail latency through the
// whole network stack — framing, admission, DRR dispatch, the engine —
// at 10k+ simulated loopback connections.
//
// The client driver runs in a forked child so its connection fds live in
// a separate fd table (10k server-side + 10k client-side would crowd a
// 20k ulimit in one process). The fork happens while the parent is still
// single-threaded (before HddServer::Start spawns anything), the child
// learns the ephemeral port over one pipe and ships SerializeDriverStats
// back over another.
//
// A final small in-process pass re-runs with the schedule recorder on and
// prices the run with engine/message_model — the §7.5 wire-cost model —
// so the report carries what the served traffic would have cost in
// inter-level synchronization messages.
//
// Knobs: HDD_BENCH_SERVER_CONNS (default 10000),
//        HDD_BENCH_SERVER_REQS  (per connection, default 10),
//        HDD_BENCH_SERVER_PIPELINE (default 4),
//        HDD_BENCH_IO_THREADS / HDD_BENCH_WORKERS (default 2 / 4).
// Report: --report=PATH (bench name "server"; see ci/check.sh).

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "engine/message_model.h"
#include "net/client.h"
#include "net/loopback.h"
#include "net/server.h"
#include "obs/metrics_registry.h"
#include "obs/report.h"

namespace hdd {
namespace {

struct BenchConfig {
  std::size_t conns = 10000;
  std::uint64_t reqs_per_conn = 10;
  std::size_t pipeline = 4;
  int io_threads = 2;
  int workers = 4;
  ServerOptions::Backend backend = ServerOptions::Backend::kPerTxn;
};

SyntheticWorkloadParams BenchParams() {
  SyntheticWorkloadParams params;
  params.depth = 4;
  params.granules_per_segment = 256;
  return params;
}

ServerOptions BenchServerOptions(const BenchConfig& config,
                                 const SyntheticWorkloadParams& params) {
  ServerOptions options;
  options.num_io_threads = config.io_threads;
  options.num_workers = config.workers;
  options.num_classes = params.depth;
  options.backend = config.backend;
  options.listen_backlog = 4096;
  options.admission.total_inflight_cap = 4096;
  return options;
}

bool WriteAll(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n = ::read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Never returns in the child. In the parent, serves the load with a
/// freshly built world and returns the child's driver stats (nullopt on
/// any child or protocol failure). MUST be called while this process is
/// single-threaded: the child is forked before the server threads start.
std::optional<DriverStats> RunForkedLoad(const BenchConfig& config,
                                         MetricsRegistry* metrics) {
  const SyntheticWorkloadParams params = BenchParams();
  int port_pipe[2];
  int stats_pipe[2];
  if (::pipe(port_pipe) != 0 || ::pipe(stats_pipe) != 0) {
    std::cerr << "pipe: " << std::strerror(errno) << "\n";
    return std::nullopt;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "fork: " << std::strerror(errno) << "\n";
    return std::nullopt;
  }

  if (pid == 0) {
    // Child: all client fds live here, in our own fd table.
    ::close(port_pipe[1]);
    ::close(stats_pipe[0]);
    std::uint16_t port = 0;
    if (!ReadAll(port_pipe[0], &port, sizeof(port))) ::_exit(2);
    ::close(port_pipe[0]);

    DriverOptions driver;
    driver.port = port;
    driver.connections = config.conns;
    driver.pipeline = config.pipeline;
    driver.requests_per_connection = config.reqs_per_conn;
    driver.deadline_seconds = 540.0;
    driver.make_request = [&params](std::size_t, std::uint64_t, Rng& rng) {
      return MakeSyntheticRequest(params, rng);
    };
    const DriverStats stats = RunLoadDriver(driver);
    const std::string text = SerializeDriverStats(stats);
    if (!WriteAll(stats_pipe[1], text.data(), text.size())) ::_exit(3);
    ::close(stats_pipe[1]);
    ::_exit(0);
  }

  // Parent: build the world and serve.
  ::close(port_pipe[0]);
  ::close(stats_pipe[1]);
  auto world = MakeServerWorld(ControllerKind::kHdd, params);
  if (world == nullptr) {
    std::cerr << "MakeServerWorld failed\n";
    return std::nullopt;
  }
  auto server = std::make_unique<HddServer>(
      world->cc.get(), BenchServerOptions(config, params), metrics);
  Status started = server->Start();
  if (!started.ok()) {
    std::cerr << "server start: " << started.message() << "\n";
    return std::nullopt;
  }
  const std::uint16_t port = server->port();
  if (!WriteAll(port_pipe[1], &port, sizeof(port))) {
    std::cerr << "port pipe write failed\n";
    return std::nullopt;
  }
  ::close(port_pipe[1]);

  std::string text;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(stats_pipe[0], buf, sizeof(buf))) != 0) {
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    text.append(buf, static_cast<std::size_t>(n));
  }
  ::close(stats_pipe[0]);

  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  server->Stop();  // joins every thread: single-threaded again after this

  if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
    std::cerr << "driver child failed (status " << wstatus << ")\n";
    return std::nullopt;
  }
  DriverStats stats;
  if (!ParseDriverStats(text, &stats)) {
    std::cerr << "driver stats parse failed\n";
    return std::nullopt;
  }
  return stats;
}

void AddLoadRow(RunReport& report, const std::string& name,
                const BenchConfig& config, const DriverStats& stats,
                MetricsRegistry& metrics) {
  const double tput =
      stats.seconds > 0.0
          ? static_cast<double>(stats.committed) / stats.seconds
          : 0.0;
  // Loopback throughput on a shared host is hostage to the scheduler;
  // the row-level calibration is measured right after the run and the
  // widened gate absorbs what the ratio cannot.
  auto& row =
      report.AddRow(name)
          .Metric("txn_per_sec", tput)
          .Metric("spins_per_sec", CalibrationSpinsPerSec())
          .Metric("gate_tolerance", 0.5)
          .Metric("connections", stats.connected)
          .Metric("connect_failures", stats.connect_failures)
          .Metric("responses", stats.responses)
          .Metric("committed", stats.committed)
          .Metric("failed", stats.failed)
          .Metric("overload", stats.overload)
          .Metric("errors", stats.errors)
          .Metric("pipeline", static_cast<std::uint64_t>(config.pipeline))
          .Metric("latency_p50_us", stats.latency.p50_us)
          .Metric("latency_p95_us", stats.latency.p95_us)
          .Metric("latency_p99_us", stats.latency.p99_us)
          .Metric("server_shed", metrics.GetCounter("net_shed").Value());
  for (const auto& [cls, per] : stats.per_class) {
    const std::string label =
        cls < 0 ? std::string("ro") : "c" + std::to_string(cls);
    row.Metric("class_" + label + "_committed", per.committed);
    row.Metric("class_" + label + "_overload", per.overload);
  }
  std::cout << name << ": " << stats.connected << " conns, "
            << stats.committed << " committed in " << stats.seconds
            << "s = " << tput << " txn/s, p99 " << stats.latency.p99_us
            << " us, overload " << stats.overload << "\n";
}

/// §7.5 wire-cost pass: a small in-process run with the schedule
/// recorder enabled, priced by engine/message_model. Kept separate from
/// the big run — recording every step of 100k served txns is the kind of
/// unbounded buffering the server itself refuses to do.
void AddMessageModelRow(RunReport& report) {
  const SyntheticWorkloadParams params = BenchParams();
  BenchConfig config;
  config.conns = 32;
  config.reqs_per_conn = 50;
  config.pipeline = 2;

  auto world = MakeServerWorld(ControllerKind::kHdd, params);
  if (world == nullptr) return;
  world->cc->recorder().set_enabled(true);
  MetricsRegistry metrics;
  HddServer server(world->cc.get(), BenchServerOptions(config, params),
                   &metrics);
  if (!server.Start().ok()) return;

  DriverOptions driver;
  driver.port = server.port();
  driver.connections = config.conns;
  driver.pipeline = config.pipeline;
  driver.requests_per_connection = config.reqs_per_conn;
  driver.make_request = [&params](std::size_t, std::uint64_t, Rng& rng) {
    return MakeSyntheticRequest(params, rng);
  };
  const DriverStats stats = RunLoadDriver(driver);
  server.Stop();

  const MessageStats msgs = ComputeMessageStats(
      world->cc->recorder().steps(), world->cc->recorder().identities(),
      world->cc->metrics());
  report.AddRow("messages")
      .Metric("committed", stats.committed)
      .Metric("remote_accesses", msgs.remote_accesses)
      .Metric("transfer_messages", msgs.transfer_messages)
      .Metric("registration_messages", msgs.registration_messages)
      .Metric("blocking_messages", msgs.blocking_messages)
      .Metric("total_messages", msgs.total_messages)
      .Metric("msg_per_commit", msgs.per_commit);
  std::cout << "messages: " << msgs.total_messages << " total ("
            << msgs.registration_messages << " registration) over "
            << stats.committed << " commits = " << msgs.per_commit
            << " msg/txn\n";
}

int Run(int argc, char** argv) {
  BenchConfig config;
  config.conns =
      static_cast<std::size_t>(EnvOr("HDD_BENCH_SERVER_CONNS", 10000));
  config.reqs_per_conn = EnvOr("HDD_BENCH_SERVER_REQS", 10);
  config.pipeline =
      static_cast<std::size_t>(EnvOr("HDD_BENCH_SERVER_PIPELINE", 4));
  config.io_threads = static_cast<int>(EnvOr("HDD_BENCH_IO_THREADS", 2));
  config.workers = static_cast<int>(EnvOr("HDD_BENCH_WORKERS", 4));

  RunReport report("server");
  std::cout << "=== hdd_server loopback: " << config.conns
            << " connections x " << config.reqs_per_conn
            << " requests, pipeline " << config.pipeline << " ===\n";

  int failures = 0;
  for (auto [backend, name] :
       {std::pair{ServerOptions::Backend::kPerTxn, "per_txn"},
        std::pair{ServerOptions::Backend::kEpoch, "epoch"}}) {
    config.backend = backend;
    MetricsRegistry metrics;
    std::optional<DriverStats> stats = RunForkedLoad(config, &metrics);
    if (!stats.has_value() || stats->connected != config.conns ||
        stats->errors != 0) {
      std::cerr << name << ": load run failed\n";
      ++failures;
      continue;
    }
    AddLoadRow(report, name, config, *stats, metrics);
  }

  AddMessageModelRow(report);
  report.AddRow("calibration")
      .Metric("spins_per_sec", CalibrationSpinsPerSec());

  if (auto path = ReportPathFromArgs(argc, argv)) {
    std::string error;
    if (!report.WriteFile(*path, &error)) {
      std::cerr << "report write failed: " << error << "\n";
      return 1;
    }
    std::cout << "report written to " << *path << "\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hdd

int main(int argc, char** argv) { return hdd::Run(argc, argv); }
