// Figure 10: the paper's comparison of HDD, SDD-1 and MV2PL (here joined
// by plain 2PL, TO and MVTO). The qualitative table is printed alongside
// measured counters from the inventory application, turning each claimed
// cell into a number.

#include <iostream>

#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/inventory_workload.h"

namespace hdd {
namespace {

void PrintQualitative() {
  std::cout <<
      "Paper's Figure 10 (claims):\n"
      "                   HDD              SDD-1            MV2PL\n"
      "  Trans analysis   hierarchical     general          none\n"
      "  Inter-class rd   never reject     may block        n/a\n"
      "                   or block\n"
      "  Intra-class      timestamp        serialized       two-phase\n"
      "  synch            ordering         pipelining       locking\n"
      "  Read-only txns   like inter-      no special       never block\n"
      "                   class synch      handling         or reject\n\n";
}

void Run() {
  PrintQualitative();

  InventoryWorkloadParams params;
  params.items = 16;
  params.read_only_weight = 0.10;
  params.yield_between_ops = true;
  InventoryWorkload workload(params);
  auto schema = HierarchySchema::Create(InventoryWorkload::Spec());

  std::cout << "Measured on the Figure 2 inventory application ("
            << "2000 txns, 4 threads, 10% ad-hoc read-only):\n\n";
  ExecutorOptions options;
  options.num_threads = 4;
  std::vector<ComparisonRow> rows;
  for (ControllerKind kind : AllControllerKinds()) {
    rows.push_back(MeasureController(
        kind, workload, [&] { return workload.MakeDatabase(); }, &*schema,
        2000, options));
  }
  PrintComparisonTable(rows, std::cout);
  std::cout
      << "\nExpected shape (the paper's cells, quantified):\n"
         "  * hdd: zero read locks, zero blocked/rejected inter-class\n"
         "    reads, read timestamps only inside root segments;\n"
         "  * sdd1: zero registrations but blocked reads > 0 (class\n"
         "    pipelines), zero aborts;\n"
         "  * mv2pl: read locks for update txns, read-only txns "
         "unregistered;\n"
         "  * 2pl/to/mvto: every read registered (lock or timestamp).\n";
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
