// Durability cost of the per-segment WAL (src/wal/): committed-txn
// throughput of the HDD controller with no WAL at all, with logging but
// fsync disabled (kNone — the pure record-marshalling overhead), with
// leader/follower group commit (kGroupCommit — the intended production
// mode), and with one fsync per commit (kPerCommit — the naive
// baseline group commit amortizes away).
//
// Logs go through FileWalStorage into a scratch directory that is
// removed afterwards, so absolute numbers track the host filesystem's
// fsync latency; the interesting signal is the ratio between modes and
// the group-commit batch sizes. One machine-readable JSON row per
// configuration follows the table.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include <algorithm>

#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/synthetic_workload.h"
#include "hdd/hdd_controller.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "wal/wal_manager.h"
#include "wal/wal_storage.h"

namespace hdd {
namespace {

// CI smoke runs shrink the sweep via HDD_BENCH_TXNS / HDD_BENCH_THREADS
// and stabilize it via HDD_BENCH_REPS (best-of repetitions per config).
const std::uint64_t kTxnsPerRun = EnvOr("HDD_BENCH_TXNS", 2000);
const int kReps = static_cast<int>(EnvOr("HDD_BENCH_REPS", 1));

struct Mode {
  const char* name;
  bool use_wal;
  WalSyncMode sync;
};

constexpr Mode kModes[] = {
    {"no-wal", false, WalSyncMode::kNone},
    {"fsync-off", true, WalSyncMode::kNone},
    {"group-commit", true, WalSyncMode::kGroupCommit},
    {"per-commit", true, WalSyncMode::kPerCommit},
};

SyntheticWorkload MakeWorkload() {
  SyntheticWorkloadParams params;
  params.depth = 4;
  params.granules_per_segment = 64;
  params.own_reads = 1;
  params.own_writes = 2;  // write-heavy: every commit must reach the log
  params.upper_reads = 1;
  params.read_only_fraction = 0.1;
  return SyntheticWorkload(params);
}

struct RunResult {
  ExecutorStats stats;
};

RunResult MeasureModeOnce(const Mode& mode, const SyntheticWorkload& workload,
                          const HierarchySchema* schema, int threads,
                          const std::string& scratch, int rep) {
  auto db = workload.MakeDatabase();
  std::unique_ptr<FileWalStorage> storage;
  std::unique_ptr<WalManager> wal;
  ExecutorOptions options;
  options.num_threads = threads;
  if (mode.use_wal) {
    const std::string dir = scratch + "/" + mode.name + "-t" +
                            std::to_string(threads) + "-r" +
                            std::to_string(rep);
    storage = std::make_unique<FileWalStorage>(dir);
    WalOptions wopts;
    wopts.group.mode = mode.sync;
    auto opened = WalManager::Open(storage.get(), db->num_segments(), wopts);
    if (!opened.ok()) {
      std::cerr << "wal open failed: " << opened.status().ToString() << "\n";
      std::exit(1);
    }
    wal = std::move(*opened);
    db->AttachWal(wal.get());
    options.wal_metrics = &wal->metrics();
  }
  LogicalClock clock;
  HddController cc(db.get(), &clock, schema);
  cc.recorder().set_enabled(false);
  RunResult result;
  result.stats = RunWorkload(cc, workload, kTxnsPerRun, options);
  return result;
}

RunResult MeasureMode(const Mode& mode, const SyntheticWorkload& workload,
                      const HierarchySchema* schema, int threads,
                      const std::string& scratch) {
  RunResult best;
  for (int rep = 0; rep < kReps; ++rep) {
    RunResult r = MeasureModeOnce(mode, workload, schema, threads, scratch, rep);
    if (rep == 0 || r.stats.Throughput() > best.stats.Throughput()) best = r;
  }
  return best;
}

std::uint64_t Get(const ExecutorStats& stats, const char* key) {
  const auto it = stats.wal.find(key);
  return it == stats.wal.end() ? 0 : it->second;
}

void Run(int argc, char** argv) {
  const SyntheticWorkload workload = MakeWorkload();
  auto schema = HierarchySchema::Create(workload.Spec());

  const std::optional<std::string> trace_path = TracePathFromArgs(argc, argv);
  if (trace_path) TraceRecorder::Enable();

  char dir_template[] = "hdd_walbench.XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::cerr << "mkdtemp failed\n";
    std::exit(1);
  }
  const std::string scratch = dir_template;

  std::cout << "=== WAL durability cost (" << kTxnsPerRun
            << " txns/run, write-heavy depth-4 chain) ===\n\n"
            << std::left << std::setw(14) << "mode" << std::right
            << std::setw(9) << "threads" << std::setw(12) << "txn/s"
            << std::setw(10) << "fsyncs" << std::setw(12) << "log MiB"
            << std::setw(12) << "mean batch" << "\n";

  RunReport report("wal");
  const double cal_before = CalibrationSpinsPerSec();
  std::string json;
  // Thread counts for this bench specifically: HDD_BENCH_WAL_THREADS
  // overrides the shared HDD_BENCH_THREADS knob. Group commit only
  // batches when several workers reach Commit concurrently — CI smoke
  // runs that force t1 via HDD_BENCH_THREADS would otherwise pin every
  // group-commit row at mean_batch = 1 (one commit per leader round, see
  // EXPERIMENTS.md) and measure nothing this bench is about.
  for (int threads : EnvListOr("HDD_BENCH_WAL_THREADS",
                               EnvListOr("HDD_BENCH_THREADS", {1, 4}))) {
    for (const Mode& mode : kModes) {
      const RunResult r =
          MeasureMode(mode, workload, &*schema, threads, scratch);
      const std::uint64_t fsyncs = Get(r.stats, "fsyncs");
      const std::uint64_t bytes = Get(r.stats, "bytes_appended");
      const std::uint64_t batches = Get(r.stats, "group_commit_batches");
      const std::uint64_t waits = Get(r.stats, "commit_waits");
      const double mean_batch =
          batches > 0 ? static_cast<double>(waits) / batches : 0.0;
      std::cout << std::left << std::setw(14) << mode.name << std::right
                << std::setw(9) << threads << std::setw(12) << std::fixed
                << std::setprecision(0) << r.stats.Throughput()
                << std::setw(10) << fsyncs << std::setw(12)
                << std::setprecision(2) << bytes / (1024.0 * 1024.0)
                << std::setw(12) << std::setprecision(2) << mean_batch
                << "\n";
      std::ostringstream row;
      row << "{\"bench\":\"wal\",\"mode\":\"" << mode.name
          << "\",\"threads\":" << threads << ",\"txns\":" << kTxnsPerRun
          << ",\"committed\":" << r.stats.committed
          << ",\"txn_per_sec\":" << std::fixed << std::setprecision(1)
          << r.stats.Throughput() << ",\"fsyncs\":" << fsyncs
          << ",\"log_bytes\":" << bytes << ",\"records\":"
          << Get(r.stats, "records_appended")
          << ",\"group_commit_batches\":" << batches
          << ",\"mean_batch\":" << std::setprecision(2) << mean_batch << "}\n";
      json += row.str();
      RunReport::Row& report_row =
          report
              .AddRow(std::string(mode.name) + "_t" + std::to_string(threads))
              .Metric("txn_per_sec", r.stats.Throughput())
              .Metric("committed", r.stats.committed)
              .Metric("fsyncs", fsyncs)
              .Metric("log_bytes", bytes)
              .Metric("records_appended", Get(r.stats, "records_appended"))
              .Metric("group_commit_batches", batches)
              .Metric("mean_batch", mean_batch);
      // This bench's signal is the durability-cost ratio between modes,
      // and its absolute rows are hostage to the host: buffered writes
      // and fsyncs to the disk, and (at threads > cores) scheduler luck.
      // Widen the regression gate for all of them (see report.h
      // contract) — bench_scaling carries the tight CPU-bound gate.
      report_row.Metric("gate_tolerance", 0.5);
    }
  }
  report.AddRow("calibration")
      .Metric("spins_per_sec",
              std::min(cal_before, CalibrationSpinsPerSec()));
  std::cout << "\nExpected shape: no-wal ~= fsync-off (marshalling is "
               "cheap) >> per-commit; group-commit recovers most of the "
               "gap once threads>1 because followers ride the leader's "
               "fsync (mean batch > 1).\n\n"
            << json;

  if (const auto path = ReportPathFromArgs(argc, argv)) {
    std::string error;
    if (!report.WriteFile(*path, &error)) {
      std::cerr << "report write failed: " << error << "\n";
      std::exit(1);
    }
    std::cout << "report written to " << *path << "\n";
  }
  if (trace_path) {
    std::ofstream os(*trace_path);
    if (!os) {
      std::cerr << "trace write failed: cannot open " << *trace_path << "\n";
      std::exit(1);
    }
    TraceRecorder::WriteChromeTrace(os);
    std::cout << "trace written to " << *trace_path << "\n";
  }

  std::error_code ec;
  std::filesystem::remove_all(scratch, ec);
}

}  // namespace
}  // namespace hdd

int main(int argc, char** argv) {
  hdd::Run(argc, argv);
  return 0;
}
