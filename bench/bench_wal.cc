// Durability cost of the per-segment WAL (src/wal/): committed-txn
// throughput of the HDD controller with no WAL at all, with logging but
// fsync disabled (kNone — the pure record-marshalling overhead), with
// leader/follower group commit (kGroupCommit — the intended production
// mode), and with one fsync per commit (kPerCommit — the naive
// baseline group commit amortizes away).
//
// Logs go through FileWalStorage into a scratch directory that is
// removed afterwards, so absolute numbers track the host filesystem's
// fsync latency; the interesting signal is the ratio between modes and
// the group-commit batch sizes. One machine-readable JSON row per
// configuration follows the table.

#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "engine/executor.h"
#include "engine/harness.h"
#include "engine/synthetic_workload.h"
#include "hdd/hdd_controller.h"
#include "wal/wal_manager.h"
#include "wal/wal_storage.h"

namespace hdd {
namespace {

constexpr std::uint64_t kTxnsPerRun = 2000;

struct Mode {
  const char* name;
  bool use_wal;
  WalSyncMode sync;
};

constexpr Mode kModes[] = {
    {"no-wal", false, WalSyncMode::kNone},
    {"fsync-off", true, WalSyncMode::kNone},
    {"group-commit", true, WalSyncMode::kGroupCommit},
    {"per-commit", true, WalSyncMode::kPerCommit},
};

SyntheticWorkload MakeWorkload() {
  SyntheticWorkloadParams params;
  params.depth = 4;
  params.granules_per_segment = 64;
  params.own_reads = 1;
  params.own_writes = 2;  // write-heavy: every commit must reach the log
  params.upper_reads = 1;
  params.read_only_fraction = 0.1;
  return SyntheticWorkload(params);
}

struct RunResult {
  ExecutorStats stats;
};

RunResult MeasureMode(const Mode& mode, const SyntheticWorkload& workload,
                      const HierarchySchema* schema, int threads,
                      const std::string& scratch) {
  auto db = workload.MakeDatabase();
  std::unique_ptr<FileWalStorage> storage;
  std::unique_ptr<WalManager> wal;
  ExecutorOptions options;
  options.num_threads = threads;
  if (mode.use_wal) {
    const std::string dir =
        scratch + "/" + mode.name + "-t" + std::to_string(threads);
    storage = std::make_unique<FileWalStorage>(dir);
    WalOptions wopts;
    wopts.group.mode = mode.sync;
    auto opened = WalManager::Open(storage.get(), db->num_segments(), wopts);
    if (!opened.ok()) {
      std::cerr << "wal open failed: " << opened.status().ToString() << "\n";
      std::exit(1);
    }
    wal = std::move(*opened);
    db->AttachWal(wal.get());
    options.wal_metrics = &wal->metrics();
  }
  LogicalClock clock;
  HddController cc(db.get(), &clock, schema);
  cc.recorder().set_enabled(false);
  RunResult result;
  result.stats = RunWorkload(cc, workload, kTxnsPerRun, options);
  return result;
}

std::uint64_t Get(const ExecutorStats& stats, const char* key) {
  const auto it = stats.wal.find(key);
  return it == stats.wal.end() ? 0 : it->second;
}

void Run() {
  const SyntheticWorkload workload = MakeWorkload();
  auto schema = HierarchySchema::Create(workload.Spec());

  char dir_template[] = "hdd_walbench.XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::cerr << "mkdtemp failed\n";
    std::exit(1);
  }
  const std::string scratch = dir_template;

  std::cout << "=== WAL durability cost (" << kTxnsPerRun
            << " txns/run, write-heavy depth-4 chain) ===\n\n"
            << std::left << std::setw(14) << "mode" << std::right
            << std::setw(9) << "threads" << std::setw(12) << "txn/s"
            << std::setw(10) << "fsyncs" << std::setw(12) << "log MiB"
            << std::setw(12) << "mean batch" << "\n";

  std::string json;
  for (int threads : {1, 4}) {
    for (const Mode& mode : kModes) {
      const RunResult r =
          MeasureMode(mode, workload, &*schema, threads, scratch);
      const std::uint64_t fsyncs = Get(r.stats, "fsyncs");
      const std::uint64_t bytes = Get(r.stats, "bytes_appended");
      const std::uint64_t batches = Get(r.stats, "group_commit_batches");
      const std::uint64_t waits = Get(r.stats, "commit_waits");
      const double mean_batch =
          batches > 0 ? static_cast<double>(waits) / batches : 0.0;
      std::cout << std::left << std::setw(14) << mode.name << std::right
                << std::setw(9) << threads << std::setw(12) << std::fixed
                << std::setprecision(0) << r.stats.Throughput()
                << std::setw(10) << fsyncs << std::setw(12)
                << std::setprecision(2) << bytes / (1024.0 * 1024.0)
                << std::setw(12) << std::setprecision(2) << mean_batch
                << "\n";
      std::ostringstream row;
      row << "{\"bench\":\"wal\",\"mode\":\"" << mode.name
          << "\",\"threads\":" << threads << ",\"txns\":" << kTxnsPerRun
          << ",\"committed\":" << r.stats.committed
          << ",\"txn_per_sec\":" << std::fixed << std::setprecision(1)
          << r.stats.Throughput() << ",\"fsyncs\":" << fsyncs
          << ",\"log_bytes\":" << bytes << ",\"records\":"
          << Get(r.stats, "records_appended")
          << ",\"group_commit_batches\":" << batches
          << ",\"mean_batch\":" << std::setprecision(2) << mean_batch << "}\n";
      json += row.str();
    }
  }
  std::cout << "\nExpected shape: no-wal ~= fsync-off (marshalling is "
               "cheap) >> per-commit; group-commit recovers most of the "
               "gap once threads>1 because followers ride the leader's "
               "fsync (mean batch > 1).\n\n"
            << json;

  std::error_code ec;
  std::filesystem::remove_all(scratch, ec);
}

}  // namespace
}  // namespace hdd

int main() {
  hdd::Run();
  return 0;
}
