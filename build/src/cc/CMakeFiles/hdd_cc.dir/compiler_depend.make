# Empty compiler generated dependencies file for hdd_cc.
# This may be replaced when dependencies are built.
