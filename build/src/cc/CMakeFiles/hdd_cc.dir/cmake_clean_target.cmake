file(REMOVE_RECURSE
  "libhdd_cc.a"
)
