file(REMOVE_RECURSE
  "CMakeFiles/hdd_cc.dir/lock_manager.cc.o"
  "CMakeFiles/hdd_cc.dir/lock_manager.cc.o.d"
  "CMakeFiles/hdd_cc.dir/mvto.cc.o"
  "CMakeFiles/hdd_cc.dir/mvto.cc.o.d"
  "CMakeFiles/hdd_cc.dir/occ.cc.o"
  "CMakeFiles/hdd_cc.dir/occ.cc.o.d"
  "CMakeFiles/hdd_cc.dir/sdd1.cc.o"
  "CMakeFiles/hdd_cc.dir/sdd1.cc.o.d"
  "CMakeFiles/hdd_cc.dir/serial.cc.o"
  "CMakeFiles/hdd_cc.dir/serial.cc.o.d"
  "CMakeFiles/hdd_cc.dir/timestamp_ordering.cc.o"
  "CMakeFiles/hdd_cc.dir/timestamp_ordering.cc.o.d"
  "CMakeFiles/hdd_cc.dir/two_phase_locking.cc.o"
  "CMakeFiles/hdd_cc.dir/two_phase_locking.cc.o.d"
  "libhdd_cc.a"
  "libhdd_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
