
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/lock_manager.cc" "src/cc/CMakeFiles/hdd_cc.dir/lock_manager.cc.o" "gcc" "src/cc/CMakeFiles/hdd_cc.dir/lock_manager.cc.o.d"
  "/root/repo/src/cc/mvto.cc" "src/cc/CMakeFiles/hdd_cc.dir/mvto.cc.o" "gcc" "src/cc/CMakeFiles/hdd_cc.dir/mvto.cc.o.d"
  "/root/repo/src/cc/occ.cc" "src/cc/CMakeFiles/hdd_cc.dir/occ.cc.o" "gcc" "src/cc/CMakeFiles/hdd_cc.dir/occ.cc.o.d"
  "/root/repo/src/cc/sdd1.cc" "src/cc/CMakeFiles/hdd_cc.dir/sdd1.cc.o" "gcc" "src/cc/CMakeFiles/hdd_cc.dir/sdd1.cc.o.d"
  "/root/repo/src/cc/serial.cc" "src/cc/CMakeFiles/hdd_cc.dir/serial.cc.o" "gcc" "src/cc/CMakeFiles/hdd_cc.dir/serial.cc.o.d"
  "/root/repo/src/cc/timestamp_ordering.cc" "src/cc/CMakeFiles/hdd_cc.dir/timestamp_ordering.cc.o" "gcc" "src/cc/CMakeFiles/hdd_cc.dir/timestamp_ordering.cc.o.d"
  "/root/repo/src/cc/two_phase_locking.cc" "src/cc/CMakeFiles/hdd_cc.dir/two_phase_locking.cc.o" "gcc" "src/cc/CMakeFiles/hdd_cc.dir/two_phase_locking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hdd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hdd_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/hdd_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
