file(REMOVE_RECURSE
  "CMakeFiles/hdd_graph.dir/algorithms.cc.o"
  "CMakeFiles/hdd_graph.dir/algorithms.cc.o.d"
  "CMakeFiles/hdd_graph.dir/decomposition.cc.o"
  "CMakeFiles/hdd_graph.dir/decomposition.cc.o.d"
  "CMakeFiles/hdd_graph.dir/dhg.cc.o"
  "CMakeFiles/hdd_graph.dir/dhg.cc.o.d"
  "CMakeFiles/hdd_graph.dir/digraph.cc.o"
  "CMakeFiles/hdd_graph.dir/digraph.cc.o.d"
  "CMakeFiles/hdd_graph.dir/report.cc.o"
  "CMakeFiles/hdd_graph.dir/report.cc.o.d"
  "CMakeFiles/hdd_graph.dir/semi_tree.cc.o"
  "CMakeFiles/hdd_graph.dir/semi_tree.cc.o.d"
  "libhdd_graph.a"
  "libhdd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
