# Empty compiler generated dependencies file for hdd_graph.
# This may be replaced when dependencies are built.
