file(REMOVE_RECURSE
  "libhdd_graph.a"
)
