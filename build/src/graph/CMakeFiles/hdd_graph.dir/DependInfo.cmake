
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cc" "src/graph/CMakeFiles/hdd_graph.dir/algorithms.cc.o" "gcc" "src/graph/CMakeFiles/hdd_graph.dir/algorithms.cc.o.d"
  "/root/repo/src/graph/decomposition.cc" "src/graph/CMakeFiles/hdd_graph.dir/decomposition.cc.o" "gcc" "src/graph/CMakeFiles/hdd_graph.dir/decomposition.cc.o.d"
  "/root/repo/src/graph/dhg.cc" "src/graph/CMakeFiles/hdd_graph.dir/dhg.cc.o" "gcc" "src/graph/CMakeFiles/hdd_graph.dir/dhg.cc.o.d"
  "/root/repo/src/graph/digraph.cc" "src/graph/CMakeFiles/hdd_graph.dir/digraph.cc.o" "gcc" "src/graph/CMakeFiles/hdd_graph.dir/digraph.cc.o.d"
  "/root/repo/src/graph/report.cc" "src/graph/CMakeFiles/hdd_graph.dir/report.cc.o" "gcc" "src/graph/CMakeFiles/hdd_graph.dir/report.cc.o.d"
  "/root/repo/src/graph/semi_tree.cc" "src/graph/CMakeFiles/hdd_graph.dir/semi_tree.cc.o" "gcc" "src/graph/CMakeFiles/hdd_graph.dir/semi_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
