
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/banking_workload.cc" "src/engine/CMakeFiles/hdd_engine.dir/banking_workload.cc.o" "gcc" "src/engine/CMakeFiles/hdd_engine.dir/banking_workload.cc.o.d"
  "/root/repo/src/engine/cost_model.cc" "src/engine/CMakeFiles/hdd_engine.dir/cost_model.cc.o" "gcc" "src/engine/CMakeFiles/hdd_engine.dir/cost_model.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/hdd_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/hdd_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/harness.cc" "src/engine/CMakeFiles/hdd_engine.dir/harness.cc.o" "gcc" "src/engine/CMakeFiles/hdd_engine.dir/harness.cc.o.d"
  "/root/repo/src/engine/inventory_workload.cc" "src/engine/CMakeFiles/hdd_engine.dir/inventory_workload.cc.o" "gcc" "src/engine/CMakeFiles/hdd_engine.dir/inventory_workload.cc.o.d"
  "/root/repo/src/engine/ledger_workload.cc" "src/engine/CMakeFiles/hdd_engine.dir/ledger_workload.cc.o" "gcc" "src/engine/CMakeFiles/hdd_engine.dir/ledger_workload.cc.o.d"
  "/root/repo/src/engine/message_model.cc" "src/engine/CMakeFiles/hdd_engine.dir/message_model.cc.o" "gcc" "src/engine/CMakeFiles/hdd_engine.dir/message_model.cc.o.d"
  "/root/repo/src/engine/synthetic_workload.cc" "src/engine/CMakeFiles/hdd_engine.dir/synthetic_workload.cc.o" "gcc" "src/engine/CMakeFiles/hdd_engine.dir/synthetic_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hdd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hdd_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/hdd_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/hdd_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/hdd/CMakeFiles/hdd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
