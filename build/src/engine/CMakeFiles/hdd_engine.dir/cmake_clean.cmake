file(REMOVE_RECURSE
  "CMakeFiles/hdd_engine.dir/banking_workload.cc.o"
  "CMakeFiles/hdd_engine.dir/banking_workload.cc.o.d"
  "CMakeFiles/hdd_engine.dir/cost_model.cc.o"
  "CMakeFiles/hdd_engine.dir/cost_model.cc.o.d"
  "CMakeFiles/hdd_engine.dir/executor.cc.o"
  "CMakeFiles/hdd_engine.dir/executor.cc.o.d"
  "CMakeFiles/hdd_engine.dir/harness.cc.o"
  "CMakeFiles/hdd_engine.dir/harness.cc.o.d"
  "CMakeFiles/hdd_engine.dir/inventory_workload.cc.o"
  "CMakeFiles/hdd_engine.dir/inventory_workload.cc.o.d"
  "CMakeFiles/hdd_engine.dir/ledger_workload.cc.o"
  "CMakeFiles/hdd_engine.dir/ledger_workload.cc.o.d"
  "CMakeFiles/hdd_engine.dir/message_model.cc.o"
  "CMakeFiles/hdd_engine.dir/message_model.cc.o.d"
  "CMakeFiles/hdd_engine.dir/synthetic_workload.cc.o"
  "CMakeFiles/hdd_engine.dir/synthetic_workload.cc.o.d"
  "libhdd_engine.a"
  "libhdd_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
