file(REMOVE_RECURSE
  "libhdd_engine.a"
)
