# Empty dependencies file for hdd_engine.
# This may be replaced when dependencies are built.
