file(REMOVE_RECURSE
  "CMakeFiles/hdd_storage.dir/database.cc.o"
  "CMakeFiles/hdd_storage.dir/database.cc.o.d"
  "CMakeFiles/hdd_storage.dir/granule.cc.o"
  "CMakeFiles/hdd_storage.dir/granule.cc.o.d"
  "CMakeFiles/hdd_storage.dir/snapshot.cc.o"
  "CMakeFiles/hdd_storage.dir/snapshot.cc.o.d"
  "libhdd_storage.a"
  "libhdd_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
