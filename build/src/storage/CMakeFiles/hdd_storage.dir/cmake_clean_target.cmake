file(REMOVE_RECURSE
  "libhdd_storage.a"
)
