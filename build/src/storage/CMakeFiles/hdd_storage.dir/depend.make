# Empty dependencies file for hdd_storage.
# This may be replaced when dependencies are built.
