file(REMOVE_RECURSE
  "CMakeFiles/hdd_txn.dir/dependency_graph.cc.o"
  "CMakeFiles/hdd_txn.dir/dependency_graph.cc.o.d"
  "CMakeFiles/hdd_txn.dir/schedule.cc.o"
  "CMakeFiles/hdd_txn.dir/schedule.cc.o.d"
  "CMakeFiles/hdd_txn.dir/schedule_analysis.cc.o"
  "CMakeFiles/hdd_txn.dir/schedule_analysis.cc.o.d"
  "libhdd_txn.a"
  "libhdd_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
