file(REMOVE_RECURSE
  "libhdd_txn.a"
)
