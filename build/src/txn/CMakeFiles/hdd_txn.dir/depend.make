# Empty dependencies file for hdd_txn.
# This may be replaced when dependencies are built.
