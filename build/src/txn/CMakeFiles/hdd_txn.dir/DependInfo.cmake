
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/dependency_graph.cc" "src/txn/CMakeFiles/hdd_txn.dir/dependency_graph.cc.o" "gcc" "src/txn/CMakeFiles/hdd_txn.dir/dependency_graph.cc.o.d"
  "/root/repo/src/txn/schedule.cc" "src/txn/CMakeFiles/hdd_txn.dir/schedule.cc.o" "gcc" "src/txn/CMakeFiles/hdd_txn.dir/schedule.cc.o.d"
  "/root/repo/src/txn/schedule_analysis.cc" "src/txn/CMakeFiles/hdd_txn.dir/schedule_analysis.cc.o" "gcc" "src/txn/CMakeFiles/hdd_txn.dir/schedule_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hdd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hdd_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
