file(REMOVE_RECURSE
  "CMakeFiles/hdd_common.dir/metrics.cc.o"
  "CMakeFiles/hdd_common.dir/metrics.cc.o.d"
  "CMakeFiles/hdd_common.dir/rng.cc.o"
  "CMakeFiles/hdd_common.dir/rng.cc.o.d"
  "CMakeFiles/hdd_common.dir/status.cc.o"
  "CMakeFiles/hdd_common.dir/status.cc.o.d"
  "libhdd_common.a"
  "libhdd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
