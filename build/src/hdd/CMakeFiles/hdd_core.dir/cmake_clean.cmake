file(REMOVE_RECURSE
  "CMakeFiles/hdd_core.dir/activity.cc.o"
  "CMakeFiles/hdd_core.dir/activity.cc.o.d"
  "CMakeFiles/hdd_core.dir/hdd_controller.cc.o"
  "CMakeFiles/hdd_core.dir/hdd_controller.cc.o.d"
  "CMakeFiles/hdd_core.dir/link_functions.cc.o"
  "CMakeFiles/hdd_core.dir/link_functions.cc.o.d"
  "CMakeFiles/hdd_core.dir/time_wall.cc.o"
  "CMakeFiles/hdd_core.dir/time_wall.cc.o.d"
  "libhdd_core.a"
  "libhdd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
