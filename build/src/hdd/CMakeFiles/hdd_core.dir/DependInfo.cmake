
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdd/activity.cc" "src/hdd/CMakeFiles/hdd_core.dir/activity.cc.o" "gcc" "src/hdd/CMakeFiles/hdd_core.dir/activity.cc.o.d"
  "/root/repo/src/hdd/hdd_controller.cc" "src/hdd/CMakeFiles/hdd_core.dir/hdd_controller.cc.o" "gcc" "src/hdd/CMakeFiles/hdd_core.dir/hdd_controller.cc.o.d"
  "/root/repo/src/hdd/link_functions.cc" "src/hdd/CMakeFiles/hdd_core.dir/link_functions.cc.o" "gcc" "src/hdd/CMakeFiles/hdd_core.dir/link_functions.cc.o.d"
  "/root/repo/src/hdd/time_wall.cc" "src/hdd/CMakeFiles/hdd_core.dir/time_wall.cc.o" "gcc" "src/hdd/CMakeFiles/hdd_core.dir/time_wall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hdd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hdd_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/hdd_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/hdd_cc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
