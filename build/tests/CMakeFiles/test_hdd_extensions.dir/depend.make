# Empty dependencies file for test_hdd_extensions.
# This may be replaced when dependencies are built.
