file(REMOVE_RECURSE
  "CMakeFiles/test_hdd_extensions.dir/test_hdd_extensions.cc.o"
  "CMakeFiles/test_hdd_extensions.dir/test_hdd_extensions.cc.o.d"
  "test_hdd_extensions"
  "test_hdd_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdd_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
