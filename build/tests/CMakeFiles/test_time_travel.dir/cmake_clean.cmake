file(REMOVE_RECURSE
  "CMakeFiles/test_time_travel.dir/test_time_travel.cc.o"
  "CMakeFiles/test_time_travel.dir/test_time_travel.cc.o.d"
  "test_time_travel"
  "test_time_travel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_travel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
