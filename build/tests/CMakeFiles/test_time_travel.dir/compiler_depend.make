# Empty compiler generated dependencies file for test_time_travel.
# This may be replaced when dependencies are built.
