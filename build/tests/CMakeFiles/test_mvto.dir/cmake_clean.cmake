file(REMOVE_RECURSE
  "CMakeFiles/test_mvto.dir/test_mvto.cc.o"
  "CMakeFiles/test_mvto.dir/test_mvto.cc.o.d"
  "test_mvto"
  "test_mvto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mvto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
