# Empty dependencies file for test_mvto.
# This may be replaced when dependencies are built.
