file(REMOVE_RECURSE
  "CMakeFiles/test_two_phase_locking.dir/test_two_phase_locking.cc.o"
  "CMakeFiles/test_two_phase_locking.dir/test_two_phase_locking.cc.o.d"
  "test_two_phase_locking"
  "test_two_phase_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_phase_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
