# Empty compiler generated dependencies file for test_two_phase_locking.
# This may be replaced when dependencies are built.
