file(REMOVE_RECURSE
  "CMakeFiles/test_database.dir/test_database.cc.o"
  "CMakeFiles/test_database.dir/test_database.cc.o.d"
  "test_database"
  "test_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
