file(REMOVE_RECURSE
  "CMakeFiles/test_semi_tree.dir/test_semi_tree.cc.o"
  "CMakeFiles/test_semi_tree.dir/test_semi_tree.cc.o.d"
  "test_semi_tree"
  "test_semi_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semi_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
