file(REMOVE_RECURSE
  "CMakeFiles/test_occ.dir/test_occ.cc.o"
  "CMakeFiles/test_occ.dir/test_occ.cc.o.d"
  "test_occ"
  "test_occ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_occ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
