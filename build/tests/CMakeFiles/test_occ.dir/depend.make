# Empty dependencies file for test_occ.
# This may be replaced when dependencies are built.
