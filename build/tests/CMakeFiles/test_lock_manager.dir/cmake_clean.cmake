file(REMOVE_RECURSE
  "CMakeFiles/test_lock_manager.dir/test_lock_manager.cc.o"
  "CMakeFiles/test_lock_manager.dir/test_lock_manager.cc.o.d"
  "test_lock_manager"
  "test_lock_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lock_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
