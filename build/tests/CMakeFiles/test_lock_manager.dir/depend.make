# Empty dependencies file for test_lock_manager.
# This may be replaced when dependencies are built.
