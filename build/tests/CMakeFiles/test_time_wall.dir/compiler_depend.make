# Empty compiler generated dependencies file for test_time_wall.
# This may be replaced when dependencies are built.
