file(REMOVE_RECURSE
  "CMakeFiles/test_time_wall.dir/test_time_wall.cc.o"
  "CMakeFiles/test_time_wall.dir/test_time_wall.cc.o.d"
  "test_time_wall"
  "test_time_wall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
