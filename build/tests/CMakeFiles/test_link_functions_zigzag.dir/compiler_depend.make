# Empty compiler generated dependencies file for test_link_functions_zigzag.
# This may be replaced when dependencies are built.
