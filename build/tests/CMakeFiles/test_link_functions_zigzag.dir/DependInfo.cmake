
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_link_functions_zigzag.cc" "tests/CMakeFiles/test_link_functions_zigzag.dir/test_link_functions_zigzag.cc.o" "gcc" "tests/CMakeFiles/test_link_functions_zigzag.dir/test_link_functions_zigzag.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdd/CMakeFiles/hdd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/hdd_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/hdd_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hdd_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hdd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
