file(REMOVE_RECURSE
  "CMakeFiles/test_link_functions_zigzag.dir/test_link_functions_zigzag.cc.o"
  "CMakeFiles/test_link_functions_zigzag.dir/test_link_functions_zigzag.cc.o.d"
  "test_link_functions_zigzag"
  "test_link_functions_zigzag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_functions_zigzag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
