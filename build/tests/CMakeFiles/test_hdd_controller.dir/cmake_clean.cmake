file(REMOVE_RECURSE
  "CMakeFiles/test_hdd_controller.dir/test_hdd_controller.cc.o"
  "CMakeFiles/test_hdd_controller.dir/test_hdd_controller.cc.o.d"
  "test_hdd_controller"
  "test_hdd_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdd_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
