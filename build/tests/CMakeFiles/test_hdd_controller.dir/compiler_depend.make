# Empty compiler generated dependencies file for test_hdd_controller.
# This may be replaced when dependencies are built.
