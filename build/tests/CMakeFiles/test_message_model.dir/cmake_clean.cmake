file(REMOVE_RECURSE
  "CMakeFiles/test_message_model.dir/test_message_model.cc.o"
  "CMakeFiles/test_message_model.dir/test_message_model.cc.o.d"
  "test_message_model"
  "test_message_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
