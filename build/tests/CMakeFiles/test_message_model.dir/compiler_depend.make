# Empty compiler generated dependencies file for test_message_model.
# This may be replaced when dependencies are built.
