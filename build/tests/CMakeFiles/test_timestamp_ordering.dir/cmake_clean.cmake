file(REMOVE_RECURSE
  "CMakeFiles/test_timestamp_ordering.dir/test_timestamp_ordering.cc.o"
  "CMakeFiles/test_timestamp_ordering.dir/test_timestamp_ordering.cc.o.d"
  "test_timestamp_ordering"
  "test_timestamp_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timestamp_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
