# Empty dependencies file for test_timestamp_ordering.
# This may be replaced when dependencies are built.
