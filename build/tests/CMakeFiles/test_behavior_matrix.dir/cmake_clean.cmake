file(REMOVE_RECURSE
  "CMakeFiles/test_behavior_matrix.dir/test_behavior_matrix.cc.o"
  "CMakeFiles/test_behavior_matrix.dir/test_behavior_matrix.cc.o.d"
  "test_behavior_matrix"
  "test_behavior_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_behavior_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
