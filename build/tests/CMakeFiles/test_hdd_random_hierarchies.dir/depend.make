# Empty dependencies file for test_hdd_random_hierarchies.
# This may be replaced when dependencies are built.
