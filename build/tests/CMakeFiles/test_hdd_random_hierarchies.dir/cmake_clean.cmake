file(REMOVE_RECURSE
  "CMakeFiles/test_hdd_random_hierarchies.dir/test_hdd_random_hierarchies.cc.o"
  "CMakeFiles/test_hdd_random_hierarchies.dir/test_hdd_random_hierarchies.cc.o.d"
  "test_hdd_random_hierarchies"
  "test_hdd_random_hierarchies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdd_random_hierarchies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
