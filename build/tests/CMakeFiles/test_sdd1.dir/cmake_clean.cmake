file(REMOVE_RECURSE
  "CMakeFiles/test_sdd1.dir/test_sdd1.cc.o"
  "CMakeFiles/test_sdd1.dir/test_sdd1.cc.o.d"
  "test_sdd1"
  "test_sdd1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdd1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
