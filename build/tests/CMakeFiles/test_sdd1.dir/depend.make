# Empty dependencies file for test_sdd1.
# This may be replaced when dependencies are built.
