# Empty dependencies file for test_schedule_analysis.
# This may be replaced when dependencies are built.
