file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_analysis.dir/test_schedule_analysis.cc.o"
  "CMakeFiles/test_schedule_analysis.dir/test_schedule_analysis.cc.o.d"
  "test_schedule_analysis"
  "test_schedule_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
