file(REMOVE_RECURSE
  "CMakeFiles/test_granule.dir/test_granule.cc.o"
  "CMakeFiles/test_granule.dir/test_granule.cc.o.d"
  "test_granule"
  "test_granule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_granule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
