# Empty dependencies file for test_granule.
# This may be replaced when dependencies are built.
