file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_controllers.dir/test_fuzz_controllers.cc.o"
  "CMakeFiles/test_fuzz_controllers.dir/test_fuzz_controllers.cc.o.d"
  "test_fuzz_controllers"
  "test_fuzz_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
