# Empty compiler generated dependencies file for test_fuzz_controllers.
# This may be replaced when dependencies are built.
