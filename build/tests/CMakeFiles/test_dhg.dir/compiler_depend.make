# Empty compiler generated dependencies file for test_dhg.
# This may be replaced when dependencies are built.
