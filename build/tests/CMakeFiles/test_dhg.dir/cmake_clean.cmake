file(REMOVE_RECURSE
  "CMakeFiles/test_dhg.dir/test_dhg.cc.o"
  "CMakeFiles/test_dhg.dir/test_dhg.cc.o.d"
  "test_dhg"
  "test_dhg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dhg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
