file(REMOVE_RECURSE
  "CMakeFiles/test_dependency_graph.dir/test_dependency_graph.cc.o"
  "CMakeFiles/test_dependency_graph.dir/test_dependency_graph.cc.o.d"
  "test_dependency_graph"
  "test_dependency_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dependency_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
