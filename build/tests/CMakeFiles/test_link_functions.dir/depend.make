# Empty dependencies file for test_link_functions.
# This may be replaced when dependencies are built.
