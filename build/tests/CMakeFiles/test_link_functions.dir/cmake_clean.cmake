file(REMOVE_RECURSE
  "CMakeFiles/test_link_functions.dir/test_link_functions.cc.o"
  "CMakeFiles/test_link_functions.dir/test_link_functions.cc.o.d"
  "test_link_functions"
  "test_link_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
