file(REMOVE_RECURSE
  "CMakeFiles/test_topo_follows.dir/test_topo_follows.cc.o"
  "CMakeFiles/test_topo_follows.dir/test_topo_follows.cc.o.d"
  "test_topo_follows"
  "test_topo_follows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo_follows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
