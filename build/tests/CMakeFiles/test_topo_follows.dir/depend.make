# Empty dependencies file for test_topo_follows.
# This may be replaced when dependencies are built.
