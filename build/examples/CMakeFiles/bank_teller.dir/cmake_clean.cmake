file(REMOVE_RECURSE
  "CMakeFiles/bank_teller.dir/bank_teller.cpp.o"
  "CMakeFiles/bank_teller.dir/bank_teller.cpp.o.d"
  "bank_teller"
  "bank_teller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_teller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
