file(REMOVE_RECURSE
  "CMakeFiles/inventory_app.dir/inventory_app.cpp.o"
  "CMakeFiles/inventory_app.dir/inventory_app.cpp.o.d"
  "inventory_app"
  "inventory_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inventory_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
