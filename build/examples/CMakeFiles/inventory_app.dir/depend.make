# Empty dependencies file for inventory_app.
# This may be replaced when dependencies are built.
