# Empty compiler generated dependencies file for analytics_walls.
# This may be replaced when dependencies are built.
