file(REMOVE_RECURSE
  "CMakeFiles/analytics_walls.dir/analytics_walls.cpp.o"
  "CMakeFiles/analytics_walls.dir/analytics_walls.cpp.o.d"
  "analytics_walls"
  "analytics_walls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_walls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
