# Empty dependencies file for workbench.
# This may be replaced when dependencies are built.
