file(REMOVE_RECURSE
  "CMakeFiles/workbench.dir/workbench.cpp.o"
  "CMakeFiles/workbench.dir/workbench.cpp.o.d"
  "workbench"
  "workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
