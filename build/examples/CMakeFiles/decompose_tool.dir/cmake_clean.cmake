file(REMOVE_RECURSE
  "CMakeFiles/decompose_tool.dir/decompose_tool.cpp.o"
  "CMakeFiles/decompose_tool.dir/decompose_tool.cpp.o.d"
  "decompose_tool"
  "decompose_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decompose_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
