# Empty compiler generated dependencies file for decompose_tool.
# This may be replaced when dependencies are built.
