file(REMOVE_RECURSE
  "../bench/bench_fig05_graph_ops"
  "../bench/bench_fig05_graph_ops.pdb"
  "CMakeFiles/bench_fig05_graph_ops.dir/bench_fig05_graph_ops.cc.o"
  "CMakeFiles/bench_fig05_graph_ops.dir/bench_fig05_graph_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_graph_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
