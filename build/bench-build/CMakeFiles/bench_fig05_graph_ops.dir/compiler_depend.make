# Empty compiler generated dependencies file for bench_fig05_graph_ops.
# This may be replaced when dependencies are built.
