file(REMOVE_RECURSE
  "../bench/bench_fig09_timewall"
  "../bench/bench_fig09_timewall.pdb"
  "CMakeFiles/bench_fig09_timewall.dir/bench_fig09_timewall.cc.o"
  "CMakeFiles/bench_fig09_timewall.dir/bench_fig09_timewall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_timewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
