file(REMOVE_RECURSE
  "../bench/bench_version_hierarchy"
  "../bench/bench_version_hierarchy.pdb"
  "CMakeFiles/bench_version_hierarchy.dir/bench_version_hierarchy.cc.o"
  "CMakeFiles/bench_version_hierarchy.dir/bench_version_hierarchy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_version_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
