# Empty dependencies file for bench_version_hierarchy.
# This may be replaced when dependencies are built.
