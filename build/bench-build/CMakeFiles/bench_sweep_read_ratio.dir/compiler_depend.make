# Empty compiler generated dependencies file for bench_sweep_read_ratio.
# This may be replaced when dependencies are built.
