file(REMOVE_RECURSE
  "../bench/bench_sweep_read_ratio"
  "../bench/bench_sweep_read_ratio.pdb"
  "CMakeFiles/bench_sweep_read_ratio.dir/bench_sweep_read_ratio.cc.o"
  "CMakeFiles/bench_sweep_read_ratio.dir/bench_sweep_read_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_read_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
