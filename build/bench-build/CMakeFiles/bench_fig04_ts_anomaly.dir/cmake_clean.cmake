file(REMOVE_RECURSE
  "../bench/bench_fig04_ts_anomaly"
  "../bench/bench_fig04_ts_anomaly.pdb"
  "CMakeFiles/bench_fig04_ts_anomaly.dir/bench_fig04_ts_anomaly.cc.o"
  "CMakeFiles/bench_fig04_ts_anomaly.dir/bench_fig04_ts_anomaly.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_ts_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
