# Empty dependencies file for bench_fig04_ts_anomaly.
# This may be replaced when dependencies are built.
