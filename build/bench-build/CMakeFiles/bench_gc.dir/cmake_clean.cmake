file(REMOVE_RECURSE
  "../bench/bench_gc"
  "../bench/bench_gc.pdb"
  "CMakeFiles/bench_gc.dir/bench_gc.cc.o"
  "CMakeFiles/bench_gc.dir/bench_gc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
