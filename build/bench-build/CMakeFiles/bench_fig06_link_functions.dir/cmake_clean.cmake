file(REMOVE_RECURSE
  "../bench/bench_fig06_link_functions"
  "../bench/bench_fig06_link_functions.pdb"
  "CMakeFiles/bench_fig06_link_functions.dir/bench_fig06_link_functions.cc.o"
  "CMakeFiles/bench_fig06_link_functions.dir/bench_fig06_link_functions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_link_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
