# Empty compiler generated dependencies file for bench_fig06_link_functions.
# This may be replaced when dependencies are built.
