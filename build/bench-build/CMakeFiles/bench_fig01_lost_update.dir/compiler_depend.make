# Empty compiler generated dependencies file for bench_fig01_lost_update.
# This may be replaced when dependencies are built.
