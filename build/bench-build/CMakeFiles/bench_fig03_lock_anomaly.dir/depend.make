# Empty dependencies file for bench_fig03_lock_anomaly.
# This may be replaced when dependencies are built.
