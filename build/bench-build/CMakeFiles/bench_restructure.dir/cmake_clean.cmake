file(REMOVE_RECURSE
  "../bench/bench_restructure"
  "../bench/bench_restructure.pdb"
  "CMakeFiles/bench_restructure.dir/bench_restructure.cc.o"
  "CMakeFiles/bench_restructure.dir/bench_restructure.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
