file(REMOVE_RECURSE
  "../bench/bench_sweep_depth"
  "../bench/bench_sweep_depth.pdb"
  "CMakeFiles/bench_sweep_depth.dir/bench_sweep_depth.cc.o"
  "CMakeFiles/bench_sweep_depth.dir/bench_sweep_depth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
