# Empty dependencies file for bench_sweep_depth.
# This may be replaced when dependencies are built.
